"""Real-network runtime: transport round-trips and the sim-vs-TCP oracle.

The headline test runs one :class:`ScenarioSpec` under both tiers —
the deterministic simulator and a real 4-process asyncio TCP cluster —
and requires the committed chains to be literally identical on the
common prefix.  Block ids are content hashes over deterministic fields
only, so the simulator acts as a full correctness oracle for the
networked runtime, not just a statistical reference.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.experiments.spec import load_scenario
from repro.rt_net.clients import ClientFleet
from repro.rt_net.differential import common_prefix_len, run_differential
from repro.rt_net.manager import (
    RuntimeManager,
    _free_ports,
    unsupported_features,
)
from repro.rt_net.transport import TcpTransport, WallClock
from repro.types.messages import ClientReplyMsg

SCENARIO = "scenarios/rt_smoke.toml"


class TestWallClock:
    def test_now_advances_and_timers_fire(self):
        async def scenario():
            clock = WallClock(asyncio.get_event_loop())
            fired = []
            clock.set_timer(0.01, fired.append, "a")
            handle = clock.set_timer(0.01, fired.append, "b")
            clock.cancel_timer(handle)
            before = clock.now
            await asyncio.sleep(0.05)
            assert clock.now > before
            return fired

        assert asyncio.run(scenario()) == ["a"]


class TestTcpTransport:
    def test_peer_roundtrip_and_multicast(self):
        async def scenario():
            host = "127.0.0.1"
            ports = _free_ports(2, host)
            peers = {rid: (host, port) for rid, port in enumerate(ports)}
            inboxes = {0: [], 1: []}
            transports = [
                TcpTransport(
                    rid, peers,
                    on_message=lambda src, msg, rid=rid: inboxes[rid].append(
                        (src, msg)
                    ),
                )
                for rid in (0, 1)
            ]
            for transport in transports:
                await transport.start()
            try:
                message = ClientReplyMsg(sender=0, height=3, round=7)
                transports[0].send(0, 1, message)
                transports[1].multicast(1, message, include_self=True)
                deadline = asyncio.get_event_loop().time() + 5.0
                while (
                    (not inboxes[1] or len(inboxes[0]) < 1
                     or len(inboxes[1]) < 2)
                    and asyncio.get_event_loop().time() < deadline
                ):
                    await asyncio.sleep(0.01)
            finally:
                for transport in transports:
                    await transport.stop()
            return inboxes, message

        inboxes, message = asyncio.run(scenario())
        # 0 → 1 point-to-point, then 1's multicast reaching 0 and itself.
        assert (0, message) in inboxes[1]
        assert (1, message) in inboxes[0]
        assert (1, message) in inboxes[1]

    def test_queued_send_survives_late_listener(self):
        """Sends enqueued before the peer listens arrive after it does."""

        async def scenario():
            host = "127.0.0.1"
            ports = _free_ports(2, host)
            peers = {rid: (host, port) for rid, port in enumerate(ports)}
            received = []
            sender = TcpTransport(0, peers, on_message=lambda *a: None)
            await sender.start()
            message = ClientReplyMsg(sender=0, height=1, round=1)
            sender.send(0, 1, message)  # nobody listening yet
            await asyncio.sleep(0.2)
            receiver = TcpTransport(
                1, peers,
                on_message=lambda src, msg: received.append((src, msg)),
            )
            await receiver.start()
            deadline = asyncio.get_event_loop().time() + 5.0
            while not received and asyncio.get_event_loop().time() < deadline:
                await asyncio.sleep(0.01)
            await sender.stop()
            await receiver.stop()
            return received, message

        received, message = asyncio.run(scenario())
        assert received == [(0, message)]


class TestRuntimeManager:
    def test_rejects_faulty_specs(self):
        faulty = load_scenario(SCENARIO).with_overrides(**{"faults.crash": 1})
        assert unsupported_features(faulty)
        with pytest.raises(ValueError):
            RuntimeManager(faulty)


class TestDifferential:
    """One spec, both tiers, identical committed chains."""

    @pytest.fixture(scope="class")
    def result(self, tmp_path_factory):
        spec = load_scenario(SCENARIO)
        return run_differential(
            spec,
            tcp_duration=3.0,
            workdir=tmp_path_factory.mktemp("rt-diff"),
        )

    def test_chains_identical_on_common_prefix(self, result):
        assert result.ok(), result.problems()
        reference = result.tcp_reference()
        agreed = common_prefix_len(result.sim, reference)
        assert agreed == min(len(result.sim), len(reference))
        assert agreed >= 10, "prefix too short to be meaningful"

    def test_every_tcp_replica_committed(self, result):
        assert result.report.min_commits() >= 1
        assert result.report.chains_agree()


class TestClientFleet:
    def test_requests_acknowledged_at_f_plus_1(self, tmp_path):
        spec = load_scenario(SCENARIO)
        manager = RuntimeManager(spec, workdir=tmp_path)
        try:
            manager.start()
            manager.wait_ready()
            fleet = ClientFleet(
                manager.endpoints(),
                f=spec.to_experiment_config(manager.seed).resolved_f(),
                num_clients=2,
                seed=manager.seed,
            )
            asyncio.run(fleet.run(2.0))
            report = manager.stop()
        finally:
            manager.cleanup()
        assert fleet.total_submitted() > 0
        assert fleet.total_acked() > 0
        assert report.total_replies() >= fleet.total_acked()
        assert report.chains_agree()

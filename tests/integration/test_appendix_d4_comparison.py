"""Appendix D.4: the cost of reverting a strong commit.

DiemBFT's round-based rules let honest replicas vote for any block
whose parent clears their round lock — so once an adversary (briefly
controlling more than x replicas) certifies a *single* conflicting
block at a higher round, honest replicas will extend that fork
unassisted.  Streamlet's height-based rules instead make honest
replicas vote only for extensions of a *longest certified chain*: a
one-block fork is simply ignored, and the adversary must keep
certifying blocks for about ``h`` rounds to regrow a competitive
chain.

These tests probe the exact voting rules that create the asymmetry.
"""

from repro.protocols.base import ReplicaConfig, ReplicaContext
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.protocols.sft_streamlet import SFTStreamletReplica
from repro.protocols.streamlet import StreamletConfig
from repro.runtime.config import build_cluster
from repro.types.block import Block
from repro.types.messages import ProposalMsg
from repro.types.quorum_cert import QuorumCertificate
from repro.types.vote import StrongVote
from tests.conftest import small_experiment


def make_isolated_replica(replica_class, config):
    """A replica wired to a throwaway single-node network."""
    from repro.crypto.registry import KeyRegistry
    from repro.net.network import Network, NetworkConfig
    from repro.net.sim import SimClock, SimTransport
    from repro.net.simulator import Simulator
    from repro.net.topology import UniformTopology

    simulator = Simulator()
    network = Network(simulator, UniformTopology(config.n), NetworkConfig())
    registry = KeyRegistry(config.n)
    context = ReplicaContext(0, SimTransport(network), SimClock(simulator), registry)
    replica = replica_class(config, context)
    network.register(0, replica)
    return replica, registry


def adversarial_qc(registry, block, n):
    """A fully signed QC for ``block`` (the adversary's fork cert)."""
    votes = []
    for voter in range(2 * ((n - 1) // 3) + 1):
        vote = StrongVote(
            block_id=block.id(),
            block_round=block.round,
            height=block.height,
            voter=voter,
        )
        signature = registry.signing_key(voter).sign(vote.signing_payload())
        votes.append(
            StrongVote(
                block_id=vote.block_id,
                block_round=vote.block_round,
                height=vote.height,
                voter=vote.voter,
                marker=0,
                signature=signature,
            )
        )
    return QuorumCertificate(
        block_id=block.id(),
        round=block.round,
        height=block.height,
        votes=tuple(votes),
    )


class TestDiemBFTOneBlockRevert:
    def test_honest_replica_votes_on_single_block_fork(self):
        """A lone higher-round certified fork block attracts honest votes."""
        config = ReplicaConfig(n=4, f=1, round_timeout=10.0)
        replica, registry = make_isolated_replica(SFTDiemBFTReplica, config)
        replica.start()

        # Main chain: rounds 1..4 (replica locks on round 3's parent…
        # i.e. r_lock follows two behind the tip).
        parent = replica.genesis
        parent_qc = replica.store.qc_for(parent.id())
        for round_number in range(1, 5):
            block = Block(
                parent_id=parent.id(),
                qc=parent_qc,
                round=round_number,
                height=parent.height + 1,
                proposer=config.leader_of(round_number),
            )
            replica.store.add_block(block)
            parent_qc = adversarial_qc(registry, block, config.n)
            replica._process_qc(parent_qc, now=0.0)
            parent = block

        assert replica.r_lock == 3  # parent of the highest certified block

        # The adversary certifies ONE conflicting block at a higher
        # round, forking from round 3 (satisfying honest locks).
        fork_base = replica.store.ancestor_at_height(parent.id(), 3)
        fork_qc_parent = replica.store.qc_for(fork_base.id())
        fork_block = Block(
            parent_id=fork_base.id(),
            qc=fork_qc_parent,
            round=6,
            height=fork_base.height + 1,
            proposer=config.leader_of(6),
        )
        replica.store.add_block(fork_block)
        fork_qc = adversarial_qc(registry, fork_block, config.n)
        replica._process_qc(fork_qc, now=0.0)

        # An honest leader now proposes extending the fork; the honest
        # replica's voting rule accepts it (parent round 6 >= lock 3).
        extension = Block(
            parent_id=fork_block.id(),
            qc=fork_qc,
            round=7,
            height=fork_block.height + 1,
            proposer=config.leader_of(7),
        )
        proposal = ProposalMsg(
            sender=config.leader_of(7), round=7, block=extension
        )
        replica.store.add_block(extension)
        votes_before = replica.votes_sent
        replica._maybe_vote(proposal)
        assert replica.votes_sent == votes_before + 1


class TestStreamletNeedsCompetitiveChain:
    def _replica_with_main_chain(self, length):
        config = StreamletConfig(n=4, f=1, round_duration=1000.0)
        replica, registry = make_isolated_replica(SFTStreamletReplica, config)
        parent = replica.genesis
        parent_qc = replica.store.qc_for(parent.id())
        for round_number in range(1, length + 1):
            block = Block(
                parent_id=parent.id(),
                qc=parent_qc,
                round=round_number,
                height=parent.height + 1,
                proposer=config.leader_of(round_number),
            )
            replica.store.add_block(block)
            parent_qc = adversarial_qc(registry, block, config.n)
            replica._process_qc(parent_qc, now=0.0)
            parent = block
        return replica, registry, config, parent

    def test_single_fork_block_is_not_votable(self):
        """A 1-block certified fork is shorter than the main chain."""
        replica, registry, config, tip = self._replica_with_main_chain(5)
        fork_base = replica.store.ancestor_at_height(tip.id(), 2)
        fork_block = Block(
            parent_id=fork_base.id(),
            qc=replica.store.qc_for(fork_base.id()),
            round=7,
            height=fork_base.height + 1,
            proposer=config.leader_of(7),
        )
        replica.store.add_block(fork_block)
        replica._process_qc(
            adversarial_qc(registry, fork_block, config.n), now=0.0
        )
        # Extending the fork (height 4 < longest certified 5 + 1)…
        extension = Block(
            parent_id=fork_block.id(),
            qc=replica.store.qc_for(fork_block.id()),
            round=8,
            height=fork_block.height + 1,
            proposer=config.leader_of(8),
        )
        replica.store.add_block(extension)
        replica.current_round = 8
        proposal = ProposalMsg(
            sender=config.leader_of(8), round=8, block=extension
        )
        votes_before = replica.votes_sent
        replica._maybe_vote(proposal)
        # Streamlet's longest-chain rule refuses: no vote.
        assert replica.votes_sent == votes_before

    def test_competitive_length_fork_is_votable(self):
        """Only after regrowing to the tip height do honest votes flow."""
        replica, registry, config, tip = self._replica_with_main_chain(5)
        # The adversary sustains corruption: certify fork blocks from
        # height 3 all the way to height 5 (matching the main tip).
        cursor = replica.store.ancestor_at_height(tip.id(), 2)
        for index, round_number in enumerate((7, 8, 9)):
            fork_block = Block(
                parent_id=cursor.id(),
                qc=replica.store.qc_for(cursor.id()),
                round=round_number,
                height=cursor.height + 1,
                proposer=config.leader_of(round_number),
            )
            replica.store.add_block(fork_block)
            replica._process_qc(
                adversarial_qc(registry, fork_block, config.n), now=0.0
            )
            cursor = fork_block
        assert cursor.height == 5  # competitive with the main chain
        extension = Block(
            parent_id=cursor.id(),
            qc=replica.store.qc_for(cursor.id()),
            round=10,
            height=cursor.height + 1,
            proposer=config.leader_of(10),
        )
        replica.store.add_block(extension)
        replica.current_round = 10
        proposal = ProposalMsg(
            sender=config.leader_of(10), round=10, block=extension
        )
        votes_before = replica.votes_sent
        replica._maybe_vote(proposal)
        assert replica.votes_sent == votes_before + 1

    def test_adversary_work_scales_with_depth(self):
        """Quantify D.4: blocks the adversary must certify per depth."""
        for depth in (1, 2, 3):
            replica, registry, config, tip = self._replica_with_main_chain(5)
            fork_from_height = 5 - depth
            cursor = replica.store.ancestor_at_height(
                tip.id(), fork_from_height
            )
            blocks_needed = 0
            round_number = 20
            while cursor.height < 5:
                fork_block = Block(
                    parent_id=cursor.id(),
                    qc=replica.store.qc_for(cursor.id()),
                    round=round_number,
                    height=cursor.height + 1,
                    proposer=config.leader_of(round_number),
                )
                replica.store.add_block(fork_block)
                replica._process_qc(
                    adversarial_qc(registry, fork_block, config.n), now=0.0
                )
                cursor = fork_block
                blocks_needed += 1
                round_number += 1
            # Reverting a commit h deep requires h adversarial certs.
            assert blocks_needed == depth


class TestLiveComparison:
    def test_diembft_vs_streamlet_fork_exposure(self):
        """In live runs both stay safe; the asymmetry is rule-level."""
        diembft = build_cluster(small_experiment(duration=4.0)).run()
        streamlet = build_cluster(
            small_experiment(protocol="sft-streamlet", duration=4.0)
        ).run()
        from repro.runtime.metrics import check_commit_safety

        check_commit_safety(diembft.replicas)
        check_commit_safety(streamlet.replicas)

"""Section 5 conflicting-transaction deferral, end to end."""

from repro.core.resilience import max_strength
from repro.runtime.config import build_cluster
from repro.runtime.conflict_policy import ConflictAwareMempool
from repro.types.transaction import Transaction
from tests.conftest import small_experiment


def run_with_policy(transactions, duration=8.0):
    """Build a cluster whose replica-0 leader drains a policy mempool.

    All replicas share the submitted transactions (every leader should
    be able to propose them, as the paper assumes client broadcast).
    """
    cluster = build_cluster(small_experiment(duration=duration)).build()
    mempools = []
    for replica in cluster.replicas:
        mempool = ConflictAwareMempool().bind(replica)
        for transaction, key, strength in transactions:
            mempool.submit(
                transaction, conflict_key=key, required_strength=strength
            )
        mempools.append(mempool)
    cluster.run(duration)
    return cluster, mempools


def find_commit(cluster, transaction):
    """(commit time, block id) of the first commit carrying the txn."""
    target = transaction.txid()
    best = None
    for replica in cluster.replicas:
        for event in replica.commit_tracker.commit_order:
            block = replica.store.maybe_get(event.block_id)
            if block is None:
                continue
            if any(txn.txid() == target for txn in block.payload.transactions):
                if best is None or event.committed_at < best[0]:
                    best = (event.committed_at, event.block_id)
    return best


class TestConflictDeferral:
    def test_conflicting_txn_held_until_strong_commit(self):
        f = 2
        high_value = Transaction(client_id=1, sequence=0, payload=b"high")
        follower = Transaction(client_id=1, sequence=1, payload=b"low")
        cluster, _ = run_with_policy(
            [
                (high_value, "account-1", max_strength(f)),
                (follower, "account-1", 0),
            ]
        )
        first = find_commit(cluster, high_value)
        second = find_commit(cluster, follower)
        assert first is not None and second is not None
        first_time, first_block = first
        second_time, _ = second
        # The follower only commits after the high-value block is
        # 2f-strong at the proposing side.
        assert second_time > first_time
        replica = cluster.replicas[0]
        timeline = replica.commit_tracker.timeline_of(first_block)
        strong_at = timeline.first_reached(max_strength(f))
        assert strong_at is not None
        assert second_time >= strong_at

    def test_unrelated_transactions_not_deferred(self):
        f = 2
        high_value = Transaction(client_id=1, sequence=0, payload=b"high")
        unrelated = Transaction(client_id=2, sequence=0, payload=b"other")
        cluster, _ = run_with_policy(
            [
                (high_value, "account-1", max_strength(f)),
                (unrelated, "account-2", 0),
            ]
        )
        first = find_commit(cluster, high_value)
        other = find_commit(cluster, unrelated)
        assert first is not None and other is not None
        # Unrelated keys ride in the same first blocks.
        assert abs(other[0] - first[0]) < 0.2

    def test_deferral_counter_increments(self):
        f = 2
        high_value = Transaction(client_id=1, sequence=0, payload=b"high")
        follower = Transaction(client_id=1, sequence=1, payload=b"low")
        _, mempools = run_with_policy(
            [
                (high_value, "account-1", max_strength(f)),
                (follower, "account-1", 0),
            ]
        )
        assert sum(mempool.deferred_count for mempool in mempools) > 0

    def test_status_transitions(self):
        f = 2
        high_value = Transaction(client_id=1, sequence=0, payload=b"high")
        cluster, mempools = run_with_policy(
            [(high_value, "account-1", max_strength(f))], duration=8.0
        )
        del cluster
        # After a full run the transaction is committed and satisfied.
        assert mempools[0].status_of(high_value) == "satisfied"
        unknown = Transaction(client_id=9, sequence=9)
        assert mempools[0].status_of(unknown) == "unknown"

    def test_no_requirement_means_no_deferral(self):
        earlier = Transaction(client_id=1, sequence=0)
        later = Transaction(client_id=1, sequence=1)
        cluster, _ = run_with_policy(
            [(earlier, "account-1", 0), (later, "account-1", 0)],
            duration=4.0,
        )
        first = find_commit(cluster, earlier)
        second = find_commit(cluster, later)
        assert first is not None and second is not None
        assert abs(second[0] - first[0]) < 0.2

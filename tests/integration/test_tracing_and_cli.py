"""Event tracing instrumentation and the command-line interface."""

import io
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main as cli_main
from repro.runtime.config import build_cluster
from repro.runtime.tracing import TraceLog, attach_tracer
from tests.conftest import small_experiment


class TestTracing:
    def _traced_run(self, duration=4.0):
        cluster = build_cluster(small_experiment(duration=duration)).build()
        trace = TraceLog()
        attach_tracer(cluster.replicas[0], trace)
        cluster.run(duration)
        return cluster, trace

    def test_rounds_and_votes_traced(self):
        _, trace = self._traced_run()
        kinds = trace.kinds()
        assert kinds.get("new-round", 0) > 50
        assert kinds.get("vote", 0) > 50
        assert kinds.get("qc", 0) > 50
        assert kinds.get("commit", 0) > 50

    def test_round_timeline_monotone(self):
        _, trace = self._traced_run()
        timeline = trace.round_timeline(0)
        assert len(timeline) > 50
        times = [time for time, _round in timeline]
        rounds = [round_number for _time, round_number in timeline]
        assert times == sorted(times)
        assert rounds == sorted(rounds)

    def test_filters(self):
        _, trace = self._traced_run()
        late = trace.events(kind="commit", since=2.0)
        assert late
        assert all(event.time >= 2.0 for event in late)
        assert all(event.kind == "commit" for event in late)
        assert trace.events(replica_id=3) == []  # only replica 0 traced

    def test_tracing_does_not_change_behaviour(self):
        traced_cluster, _ = self._traced_run()
        plain_cluster = build_cluster(small_experiment(duration=4.0)).run()
        traced_commits = [
            event.block_id
            for event in traced_cluster.replicas[0].commit_tracker.commit_order
        ]
        plain_commits = [
            event.block_id
            for event in plain_cluster.replicas[0].commit_tracker.commit_order
        ]
        assert traced_commits == plain_commits

    def test_capacity_bound(self):
        trace = TraceLog(capacity=10)
        for index in range(25):
            trace.record(float(index), 0, "x", "detail")
        assert len(trace) == 10
        assert trace.dropped == 15


class TestCLI:
    def _run_cli(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(argv)
        return code, stdout.getvalue(), stderr.getvalue()

    def test_run_command(self):
        code, out, _ = self._run_cli(
            ["run", "--protocol", "sft-diembft", "--n", "7",
             "--topology", "uniform", "--duration", "3",
             "--timeout", "0.5"]
        )
        assert code == 0
        assert "commits:" in out
        assert "strong commit latency" in out

    def test_run_command_csv(self):
        code, out, _ = self._run_cli(
            ["run", "--n", "7", "--topology", "uniform",
             "--duration", "3", "--timeout", "0.5", "--csv"]
        )
        assert code == 0
        assert "ratio,level,mean_latency_s" in out

    def test_run_with_crashes(self):
        code, out, _ = self._run_cli(
            ["run", "--n", "7", "--topology", "uniform", "--duration", "4",
             "--timeout", "0.4", "--crash", "1"]
        )
        assert code == 0
        assert "commits:" in out

    def test_counterexample_command(self):
        code, out, _ = self._run_cli(["counterexample", "--f", "2"])
        assert code == 0
        assert "violates Definition 1: True" in out
        assert "safe: True" in out

    def test_health_command(self):
        code, out, _ = self._run_cli(
            ["health", "--n", "7", "--topology", "uniform",
             "--duration", "3", "--timeout", "0.5"]
        )
        assert code == 0
        assert "max achievable strength" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            self._run_cli(["frobnicate"])

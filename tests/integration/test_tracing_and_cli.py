"""Structured lifecycle tracing, flight recording, and the CLI."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main as cli_main
from repro.obs import (
    TraceLog,
    breakdown_from_cluster,
    breakdown_from_trace,
)
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


class TestTracing:
    def _traced_run(self, duration=4.0, **overrides):
        config = small_experiment(
            duration=duration, trace_level="spans", **overrides
        )
        cluster = build_cluster(config).run()
        return cluster, cluster.trace

    def test_lifecycle_spans_traced(self):
        _, trace = self._traced_run()
        kinds = trace.kinds()
        # The full causal chain: proposed → votes_collected → qc_formed
        # → endorsed → committed, plus round entries and votes.
        for kind in ("round", "propose", "vote", "votes_collected",
                     "qc_formed", "qc", "endorse", "commit"):
            assert kinds.get(kind, 0) > 0, f"no {kind} events"
        assert kinds["round"] > 50
        assert kinds["vote"] > 50
        assert kinds["qc"] > 50
        assert kinds["commit"] > 50

    def test_round_timeline_monotone(self):
        _, trace = self._traced_run()
        timeline = trace.round_timeline(0)
        assert len(timeline) > 50
        times = [time for time, _round in timeline]
        rounds = [round_number for _time, round_number in timeline]
        assert times == sorted(times)
        assert rounds == sorted(rounds)

    def test_filters(self):
        _, trace = self._traced_run()
        late = trace.events(kind="commit", since=2.0)
        assert late
        assert all(event.time >= 2.0 for event in late)
        assert all(event.kind == "commit" for event in late)
        one_replica = trace.events(kind="vote", replica_id=3)
        assert one_replica
        assert all(event.replica_id == 3 for event in one_replica)
        assert trace.events(kind="no-such-kind") == []

    def test_spans_carry_block_context(self):
        _, trace = self._traced_run()
        for event in trace.events(kind="commit"):
            assert event.round >= 0
            assert event.height >= 0
            assert event.block
        for event in trace.events(kind="endorse"):
            assert event.value >= 0.0  # the strength level reached

    def test_tracing_does_not_change_behaviour(self):
        traced_cluster, _ = self._traced_run()
        plain_cluster = build_cluster(small_experiment(duration=4.0)).run()
        assert (
            traced_cluster.simulator.events_processed
            == plain_cluster.simulator.events_processed
        )
        traced_commits = [
            event.block_id
            for event in traced_cluster.replicas[0].commit_tracker.commit_order
        ]
        plain_commits = [
            event.block_id
            for event in plain_cluster.replicas[0].commit_tracker.commit_order
        ]
        assert traced_commits == plain_commits

    def test_trace_level_off_has_no_span_log(self):
        cluster = build_cluster(small_experiment(duration=1.0)).run()
        assert cluster.trace is None

    def test_full_level_adds_deliveries(self):
        config = small_experiment(duration=2.0, trace_level="full")
        cluster = build_cluster(config).run()
        kinds = cluster.trace.kinds()
        assert kinds.get("deliver", 0) > 100

    def test_capacity_bound(self):
        trace = TraceLog(capacity=10)
        for index in range(25):
            trace.record(float(index), 0, "x")
        assert len(trace) == 10
        assert trace.dropped == 15
        assert len(trace.events(kind="x")) == 10

    def test_breakdown_matches_cluster_state(self):
        cluster, trace = self._traced_run(
            duration=6.0, workload_rate=200.0, batch_size=64
        )
        from_state = breakdown_from_cluster(cluster.replicas[0])
        from_spans = breakdown_from_trace(trace, 0)
        assert from_state == from_spans
        assert from_state["mempool_wait_s"] is not None
        assert from_state["proposal_to_qc_s"] is not None
        assert from_state["qc_to_commit_s"] is not None


class TestCLI:
    def _run_cli(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(argv)
        return code, stdout.getvalue(), stderr.getvalue()

    def test_run_command(self):
        code, out, _ = self._run_cli(
            ["run", "--protocol", "sft-diembft", "--n", "7",
             "--topology", "uniform", "--duration", "3",
             "--timeout", "0.5"]
        )
        assert code == 0
        assert "commits:" in out
        assert "strong commit latency" in out

    def test_run_command_csv(self):
        code, out, _ = self._run_cli(
            ["run", "--n", "7", "--topology", "uniform",
             "--duration", "3", "--timeout", "0.5", "--csv"]
        )
        assert code == 0
        assert "ratio,level,mean_latency_s" in out

    def test_run_with_crashes(self):
        code, out, _ = self._run_cli(
            ["run", "--n", "7", "--topology", "uniform", "--duration", "4",
             "--timeout", "0.4", "--crash", "1"]
        )
        assert code == 0
        assert "commits:" in out

    def test_counterexample_command(self):
        code, out, _ = self._run_cli(["counterexample", "--f", "2"])
        assert code == 0
        assert "violates Definition 1: True" in out
        assert "safe: True" in out

    def test_health_command(self):
        code, out, _ = self._run_cli(
            ["health", "--n", "7", "--topology", "uniform",
             "--duration", "3", "--timeout", "0.5"]
        )
        assert code == 0
        assert "max achievable strength" in out

    def test_unknown_command_rejected(self):
        with pytest.raises(SystemExit):
            self._run_cli(["frobnicate"])


class TestTraceCLI:
    def _run_cli(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(argv)
        return code, stdout.getvalue(), stderr.getvalue()

    def _scenario_file(self, tmp_path):
        from repro.experiments import ScenarioSpec
        from repro.experiments.spec import save_scenario

        spec = ScenarioSpec(
            name="trace_cli_case",
            protocol="sft-diembft",
            n=4,
            topology="uniform",
            uniform_delay=0.01,
            jitter=0.002,
            duration=3.0,
            round_timeout=0.5,
            seeds=(7,),
        )
        path = tmp_path / "trace_cli_case.json"
        save_scenario(spec, path)
        return path

    def test_trace_summarize(self, tmp_path):
        path = self._scenario_file(tmp_path)
        code, out, _ = self._run_cli(["trace", "summarize", str(path)])
        assert code == 0
        assert "events recorded:" in out
        assert "latency breakdown" in out
        assert "proposal_to_qc_s" in out

    def test_trace_export_valid_chrome_json(self, tmp_path):
        from repro.obs import validate_chrome_trace

        path = self._scenario_file(tmp_path)
        out_path = tmp_path / "trace.json"
        code, out, _ = self._run_cli(
            ["trace", "export", str(path), "--out", str(out_path)]
        )
        assert code == 0
        data = json.loads(out_path.read_text())
        assert validate_chrome_trace(data) == []
        assert data["otherData"]["latency_breakdown"]["qc_to_commit_s"] > 0
        thread_names = [
            event for event in data["traceEvents"]
            if event["ph"] == "M" and event["name"] == "thread_name"
        ]
        assert len(thread_names) == 4  # one named track per replica

    def test_trace_rejects_scripted_spec(self, tmp_path):
        # Scripted specs have no cluster to trace; clean exit, code 2.
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(
                ["trace", "summarize",
                 "scenarios/fuzz_corpus/appendix_c_naive.json"]
            )
        assert excinfo.value.code == 2

    def test_fuzz_replay_writes_flight_dump(self, tmp_path):
        # An amnesia schedule (three replicas restarting from blank
        # disks) deliberately violates safety — the replay must exit
        # non-zero and dump every replica's flight-recorder ring.
        # (This used to replay lazy_quorum_stall, but that entry's
        # violation was an oracle applicability gap, since fixed.)
        from repro.experiments import FaultMix, ScenarioSpec, save_scenario

        spec = ScenarioSpec(
            name="amnesia_dump", protocol="diembft", n=4, duration=8.0,
            seeds=(11,),
            faults=FaultMix(amnesia=3, recover_at=2.5, downtime=1.0),
        )
        spec_path = tmp_path / "amnesia_dump.json"
        save_scenario(spec, spec_path)
        dump_path = tmp_path / "flight.json"
        code, _, err = self._run_cli(
            ["fuzz", "replay", str(spec_path),
             "--flight-out", str(dump_path)]
        )
        assert code == 1  # the replay violates double-vote/prefix
        assert dump_path.exists(), err
        recording = json.loads(dump_path.read_text())
        assert recording["violations"]
        assert recording["replicas"]
        some_replica = next(iter(recording["replicas"].values()))
        assert some_replica["events"]

"""SFT-DiemBFT end-to-end: strong commits, markers, endorsements."""

from repro.core.resilience import max_strength
from repro.runtime.config import build_cluster
from repro.runtime.metrics import (
    check_commit_safety,
    regular_commit_latency,
    strong_commit_latency,
    strong_latency_series,
    throughput_txps,
)
from tests.conftest import small_experiment


class TestStrongCommitProgress:
    def test_blocks_reach_max_strength(self):
        cluster = build_cluster(small_experiment()).run()
        replica = cluster.replicas[0]
        f = cluster.config.resolved_f()
        top = max_strength(f)
        reached = [
            timeline.current
            for _, timeline in replica.commit_tracker.timelines()
        ]
        assert max(reached) == top
        # Most settled blocks should be at max strength.
        assert sum(1 for level in reached if level == top) > 50

    def test_f_strong_time_equals_regular_commit_time(self):
        cluster = build_cluster(small_experiment()).run()
        replica = cluster.replicas[0]
        f = cluster.config.resolved_f()
        checked = 0
        for event in replica.commit_tracker.commit_order:
            timeline = replica.commit_tracker.timeline_of(event.block_id)
            if timeline is None or event.round == 0:
                continue
            assert timeline.first_reached(f) == event.committed_at
            checked += 1
        assert checked > 50

    def test_latency_monotone_in_strength(self):
        cluster = build_cluster(small_experiment(duration=10.0)).run()
        series = strong_latency_series(
            cluster, ratios=(1.0, 1.5, 2.0), created_before=6.0
        )
        latencies = [point.mean_latency for point in series]
        assert all(lat is not None for lat in latencies)
        assert latencies[0] <= latencies[1] <= latencies[2]

    def test_markers_zero_in_fork_free_run(self):
        cluster = build_cluster(small_experiment()).run()
        for replica in cluster.replicas:
            tip = replica.store.highest_certified_block()
            assert replica.voting_history.marker_for(tip) == 0

    def test_strong_qc_carries_markers(self):
        cluster = build_cluster(small_experiment()).run()
        replica = cluster.replicas[0]
        qc = replica.qc_high
        assert qc.is_strong()
        assert all(vote.marker == 0 for vote in qc.votes)

    def test_safety_and_throughput(self):
        cluster = build_cluster(small_experiment()).run()
        check_commit_safety(cluster.replicas)
        assert throughput_txps(cluster) > 100

    def test_same_throughput_as_plain_diembft(self):
        # The paper: SFT overhead (one marker) leaves throughput intact.
        sft = build_cluster(small_experiment()).run()
        plain = build_cluster(small_experiment(protocol="diembft")).run()
        tput_sft = throughput_txps(sft)
        tput_plain = throughput_txps(plain)
        assert abs(tput_sft - tput_plain) / tput_plain < 0.02

    def test_strength_capped_at_2f(self):
        cluster = build_cluster(small_experiment()).run()
        f = cluster.config.resolved_f()
        for replica in cluster.replicas:
            for _, timeline in replica.commit_tracker.timelines():
                assert timeline.current <= 2 * f


class TestObserverFlag:
    def test_non_observers_skip_bookkeeping(self):
        cluster = build_cluster(small_experiment(observers=(0, 1))).run()
        assert cluster.replicas[0].endorsement is not None
        assert cluster.replicas[5].endorsement is None
        # Protocol behaviour is identical: same commits everywhere.
        commits_observer = [
            event.block_id
            for event in cluster.replicas[0].commit_tracker.commit_order
        ]
        commits_plain = [
            event.block_id
            for event in cluster.replicas[5].commit_tracker.commit_order
        ]
        shared = min(len(commits_observer), len(commits_plain))
        assert commits_observer[:shared] == commits_plain[:shared]
        assert shared > 50

    def test_observer_strong_latency_only_from_observers(self):
        cluster = build_cluster(small_experiment(observers=(0,))).run()
        mean, samples, eligible = strong_commit_latency(
            cluster, level=cluster.config.resolved_f()
        )
        assert samples == eligible > 0
        assert mean is not None


class TestExtraWait:
    def test_extra_wait_enlarges_qcs(self):
        base = build_cluster(small_experiment()).run()
        waited = build_cluster(small_experiment(qc_extra_wait=0.05)).run()
        assert len(waited.replicas[0].qc_high.votes) > len(
            base.replicas[0].qc_high.votes
        )

    def test_extra_wait_increases_regular_latency(self):
        base = build_cluster(small_experiment(duration=6.0)).run()
        waited = build_cluster(
            small_experiment(duration=6.0, qc_extra_wait=0.05)
        ).run()
        lat_base, _ = regular_commit_latency(base, created_before=4.0)
        lat_waited, _ = regular_commit_latency(waited, created_before=4.0)
        assert lat_waited > lat_base

    def test_extra_wait_speeds_up_max_strength(self):
        base = build_cluster(small_experiment(duration=6.0)).run()
        waited = build_cluster(
            small_experiment(duration=6.0, qc_extra_wait=0.05)
        ).run()
        f = base.config.resolved_f()
        top = max_strength(f)
        strong_base, _, _ = strong_commit_latency(
            base, level=top, created_before=4.0
        )
        strong_waited, _, _ = strong_commit_latency(
            waited, level=top, created_before=4.0
        )
        assert strong_waited is not None and strong_base is not None
        # With full QCs, 2f-strong coincides with the regular 3-chain.
        lat_waited, _ = regular_commit_latency(waited, created_before=4.0)
        assert abs(strong_waited - lat_waited) < 1e-6
        del strong_base


class TestGeneralizedIntervals:
    def test_interval_votes_flow_end_to_end(self):
        cluster = build_cluster(
            small_experiment(generalized_intervals=True)
        ).run()
        check_commit_safety(cluster.replicas)
        replica = cluster.replicas[0]
        qc = replica.qc_high
        assert all(vote.intervals for vote in qc.votes)
        # Fork-free: I = [1, r].
        vote = qc.votes[0]
        assert vote.intervals[0][0] == 1
        assert vote.intervals[-1][1] == vote.block_round

    def test_interval_mode_reaches_max_strength(self):
        cluster = build_cluster(
            small_experiment(generalized_intervals=True)
        ).run()
        f = cluster.config.resolved_f()
        replica = cluster.replicas[0]
        reached = [
            timeline.current
            for _, timeline in replica.commit_tracker.timelines()
        ]
        assert max(reached) == 2 * f

    def test_windowed_intervals(self):
        cluster = build_cluster(
            small_experiment(
                generalized_intervals=True, interval_window=5
            )
        ).run()
        replica = cluster.replicas[0]
        vote = replica.qc_high.votes[0]
        lo = vote.intervals[0][0]
        assert lo >= vote.block_round - 5

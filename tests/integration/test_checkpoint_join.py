"""End-to-end checkpointing: truncation bounds memory, snapshots join.

The scenarios here are the subprotocol's reason to exist: a replica
partitioned away long enough that block-by-block replay would be the
only pre-checkpoint way back instead installs a peer's certified state
image and rejoins within an interval of the tip, while every replica's
live block count stays O(checkpoint_interval) no matter how long the
run.  ``checkpoint_interval=0`` replays the pre-checkpoint runs
byte-for-byte (the committed-baseline differentials live in
``test_throughput.py::TestFlagsOffBaselines``, whose baselines are
recorded with the knob off).
"""

import json

from repro.analysis.invariants import check_prefix_consistency
from repro.experiments.campaign import Job
from repro.experiments.runner import run_job
from repro.experiments.spec import PartitionWindow, ScenarioSpec


def join_spec(**overrides):
    """One replica isolated for most of the run, checkpointing on."""
    params = dict(
        name="checkpoint-join",
        protocol="sft-diembft",
        n=4,
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        duration=25.0,
        round_timeout=0.5,
        seeds=(3,),
        block_batch_count=2,
        block_batch_bytes=100,
        workload_rate=40.0,
        checkpoint_interval=4,
        partitions=(
            PartitionWindow(start=3.0, end=14.0, groups=((0, 1, 2), (3,))),
        ),
    )
    params.update(overrides)
    return ScenarioSpec(**params)


def run_spec(spec):
    cluster = spec.build(spec.seeds[0])
    cluster.run()
    return cluster


class TestSnapshotJoin:
    def test_lagged_replica_installs_snapshot(self):
        cluster = run_spec(join_spec())
        joiner = cluster.replicas[3]
        stats = joiner.checkpoint.stats()
        assert stats["snapshots_installed"] >= 1
        assert stats["invalid_snapshots"] == 0
        served = sum(
            replica.checkpoint.stats()["snapshots_served"]
            for replica in cluster.replicas
        )
        assert served >= 1

    def test_joiner_commit_log_jumps_to_checkpoint(self):
        cluster = run_spec(join_spec())
        joiner = cluster.replicas[3]
        heights = joiner.commit_tracker.snapshot_heights
        assert heights, "snapshot install must record its jump height"
        for height in heights:
            assert height % joiner.checkpoint.interval == 0

    def test_joiner_state_converges_with_peers(self):
        cluster = run_spec(join_spec())
        # The joiner's snapshot jump removes the partition-era gap from
        # its commit log, so commit *counts* are not comparable across
        # replicas — committed heights are.  Drain every executor, then
        # require identical kvstore hashes wherever two replicas ended
        # on the same committed tip height.
        tips = {}
        for replica in cluster.replicas:
            replica.checkpoint.executor.sync()
            tip = replica.commit_tracker.commit_order[-1].height
            tips.setdefault(tip, set()).add(
                replica.checkpoint.executor.state_hash().value
            )
        for height, digests in tips.items():
            assert len(digests) == 1, f"divergent state at height {height}"
        joiner_tip = cluster.replicas[3].commit_tracker.commit_order[-1].height
        peer_tips = [
            cluster.replicas[rid].commit_tracker.commit_order[-1].height
            for rid in (0, 1, 2)
        ]
        # The joiner caught up to within a handful of commits of peers.
        assert joiner_tip >= max(peer_tips) - 8

    def test_truncated_history_stays_prefix_consistent(self):
        cluster = run_spec(join_spec())
        violations = check_prefix_consistency(cluster.replicas)
        assert violations == []

    def test_campaign_metrics_surface_checkpoint_section(self):
        spec = join_spec()
        entry = run_job(Job(job_id="ckpt/join", spec=spec, seed=spec.seeds[0]))
        section = entry["metrics"]["checkpoint"]
        assert section["enabled"] is True
        assert section["snapshots_installed"] >= 1
        assert section["stable_height"] > 0
        assert section["peak_live_blocks"] > 0
        assert entry["metrics"]["invariants"]["ok"]


class TestMemoryBound:
    def test_truncation_bounds_live_blocks(self):
        enabled = run_spec(
            join_spec(name="ckpt-on", partitions=(), duration=20.0)
        )
        disabled = run_spec(
            join_spec(
                name="ckpt-off",
                partitions=(),
                duration=20.0,
                checkpoint_interval=0,
            )
        )
        replica = enabled.replicas[0]
        commits = len(replica.commit_tracker.commit_order)
        assert commits > 100
        # With checkpointing every 4 commits the store holds a few
        # blocks; without it, the full history accumulates.
        assert replica.store.peak_live_blocks < 20
        assert disabled.replicas[0].store.peak_live_blocks > commits / 2

    def test_truncation_never_drops_commits(self):
        # Truncation is bookkeeping, not protocol: despite the store
        # pruning below every stable checkpoint, the commit log stays a
        # gapless height sequence, and throughput matches an
        # untruncated run to within noise.  (The chains themselves are
        # not byte-comparable across the knob — checkpoint traffic
        # draws from the network RNG, shifting batch composition.)
        enabled = run_spec(
            join_spec(name="ckpt-on", partitions=(), duration=12.0)
        )
        disabled = run_spec(
            join_spec(
                name="ckpt-off",
                partitions=(),
                duration=12.0,
                checkpoint_interval=0,
            )
        )
        for on_replica, off_replica in zip(
            enabled.replicas, disabled.replicas
        ):
            heights = [
                event.height
                for event in on_replica.commit_tracker.commit_order
            ]
            assert heights == list(range(len(heights)))
            on_count = len(heights)
            off_count = len(off_replica.commit_tracker.commit_order)
            assert on_count > 100
            assert abs(on_count - off_count) <= 0.1 * max(on_count, off_count)


class TestKnobOffDeterminism:
    def test_interval_zero_metrics_are_byte_identical(self):
        spec = join_spec(name="ckpt-off-det", checkpoint_interval=0)
        first = run_job(Job(job_id="det/1", spec=spec, seed=spec.seeds[0]))
        second = run_job(Job(job_id="det/2", spec=spec, seed=spec.seeds[0]))
        assert json.dumps(first["metrics"], sort_keys=True) == json.dumps(
            second["metrics"], sort_keys=True
        )
        assert first["metrics"]["checkpoint"]["enabled"] is False

    def test_interval_on_metrics_are_deterministic_too(self):
        spec = join_spec(name="ckpt-on-det")
        first = run_job(Job(job_id="det/3", spec=spec, seed=spec.seeds[0]))
        second = run_job(Job(job_id="det/4", spec=spec, seed=spec.seeds[0]))
        assert json.dumps(first["metrics"], sort_keys=True) == json.dumps(
            second["metrics"], sort_keys=True
        )

"""Fuzz engine end-to-end: determinism, oracle wiring, shrinker, CLI."""

import io
import json
from contextlib import redirect_stderr, redirect_stdout

import pytest

from repro.cli import main as cli_main
from repro.experiments import load_scenario, save_scenario
from repro.experiments.spec import ScenarioSpec
from repro.fuzz import (
    SMOKE_PROFILE,
    evaluate_case,
    run_fuzz,
    shrink_spec,
    spec_fails,
)

FUZZ_SEEDS = range(4)


@pytest.fixture(scope="module")
def serial_report():
    return run_fuzz(FUZZ_SEEDS, SMOKE_PROFILE, workers=1)


@pytest.fixture(scope="module")
def parallel_report():
    return run_fuzz(FUZZ_SEEDS, SMOKE_PROFILE, workers=2)


class TestEngineDeterminism:
    def test_same_seeds_byte_identical_report(self, serial_report, parallel_report):
        assert json.dumps(serial_report, sort_keys=True) == json.dumps(
            parallel_report, sort_keys=True
        )

    def test_report_shape(self, parallel_report):
        report = parallel_report
        assert report["profile"] == "smoke"
        assert report["seeds"] == list(FUZZ_SEEDS)
        assert len(report["cases"]) == len(list(FUZZ_SEEDS))
        from repro.experiments import spec_from_mapping

        for case in report["cases"]:
            assert case["ok"] in (True, False)
            assert "metrics_digest" in case
            # every fuzz case must be reconstructible from its report
            assert spec_from_mapping(case["spec"]).name == case["name"]


class TestAppendixCFlagging:
    """The acceptance path: a deliberately naive-accounting run is
    flagged as a Definition-1 violation with a shrunk replayable spec."""

    def _naive_spec(self):
        return ScenarioSpec(
            name="appendix-c-naive",
            script="appendix_c",
            n=10,
            gst=1.0,  # noise the shrinker must strip
            jitter=0.003,
            naive_accounting=True,
            seeds=(0,),
        )

    def test_naive_run_flagged_as_definition_1(self):
        entry = evaluate_case(self._naive_spec(), 0)
        invariants = entry["metrics"]["invariants"]
        assert invariants["ok"]  # expected counterexample, not a failure
        assert len(invariants["violations"]) == 1
        violation = invariants["violations"][0]
        assert violation["invariant"] == "definition-1"
        assert violation["expected"] is True
        assert "naive accounting" in violation["detail"]

    def test_sound_accounting_is_safe_on_same_construction(self):
        spec = self._naive_spec().with_overrides(naive_accounting=False)
        entry = evaluate_case(spec, 0)
        assert entry["metrics"]["invariants"]["violations"] == []

    def test_shrinks_to_minimal_replayable_spec(self, tmp_path):
        result = shrink_spec(self._naive_spec())
        minimized = result.spec
        assert result.shrunk
        # f = 2 is the smallest Appendix C construction; everything
        # irrelevant to the violation is gone.
        assert minimized.resolved_f() == 2
        assert minimized.gst == 0.0
        assert minimized.jitter == 0.0
        assert minimized.naive_accounting is True
        assert minimized.script == "appendix_c"
        # the minimized spec is replayable from disk and still fails
        path = tmp_path / "minimal.json"
        save_scenario(minimized, path)
        replayed = load_scenario(path)
        assert spec_fails(replayed)


class TestFuzzCli:
    def test_fuzz_run_smoke(self, tmp_path):
        out = tmp_path / "report.json"
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main([
                "fuzz", "run", "--seeds", "0:3", "--profile", "smoke",
                "--workers", "2", "--out", str(out),
                "--corpus-dir", str(tmp_path / "found"),
            ])
        assert code == 0
        report = json.loads(out.read_text())
        assert report["summary"]["cases"] == 3
        assert "unexpected violation" in stdout.getvalue()

    def test_fuzz_replay_ok_spec(self, tmp_path, capsys):
        spec = ScenarioSpec(
            name="tiny", n=4, protocol="sft-diembft", duration=4.0,
            topology="uniform", uniform_delay=0.01, round_timeout=0.3,
        )
        path = tmp_path / "tiny.json"
        save_scenario(spec, path)
        assert cli_main(["fuzz", "replay", str(path)]) == 0
        assert "all invariants hold" in capsys.readouterr().out

    def test_fuzz_replay_naive_counterexample(self, tmp_path, capsys):
        spec = ScenarioSpec(
            name="naive", script="appendix_c", n=7, naive_accounting=True
        )
        path = tmp_path / "naive.json"
        save_scenario(spec, path)
        # expected counterexample: ok by default, fatal under --strict
        assert cli_main(["fuzz", "replay", str(path)]) == 0
        assert "expected counterexample" in capsys.readouterr().out
        assert cli_main(["fuzz", "replay", str(path), "--strict"]) == 1

    def test_fuzz_replay_invalid_spec_exits_2(self, tmp_path, capsys):
        path = tmp_path / "broken.json"
        path.write_text(json.dumps({"n": 4, "jitter": -1.0}))
        with pytest.raises(SystemExit) as excinfo:
            cli_main(["fuzz", "replay", str(path)])
        assert excinfo.value.code == 2
        assert "error:" in capsys.readouterr().err

    def test_fuzz_shrink_cli(self, tmp_path, capsys):
        spec = ScenarioSpec(
            name="naive", script="appendix_c", n=10, naive_accounting=True
        )
        path = tmp_path / "naive.json"
        save_scenario(spec, path)
        out = tmp_path / "min.json"
        assert cli_main([
            "fuzz", "shrink", str(path), "--out", str(out)
        ]) == 0
        minimized = load_scenario(out)
        assert minimized.resolved_f() == 2
        assert minimized.naive_accounting

    def test_fuzz_shrink_rejects_passing_spec(self, tmp_path, capsys):
        spec = ScenarioSpec(name="fine", n=4, duration=4.0, round_timeout=0.3)
        path = tmp_path / "fine.json"
        save_scenario(spec, path)
        assert cli_main(["fuzz", "shrink", str(path)]) == 2
        assert "does not fail" in capsys.readouterr().err

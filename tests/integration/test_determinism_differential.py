"""Differential determinism: caching must never change results.

The crypto memo layer (payload caches, registry verification memo,
QC validation memo) and the commit-rule early exits are pure-function
caches: for any seeded run they must produce *byte-identical*
deterministic metrics to the uncached implementation, in the exact
same event order.  These tests run the same seeded scenarios with
``KeyRegistry.memoize`` on and off and diff the full metrics section —
the strongest cheap check that the hot-path overhaul changed cost, not
behaviour.
"""

import json

import pytest

from repro.crypto.registry import KeyRegistry
from repro.experiments.campaign import Job
from repro.experiments.runner import run_job
from repro.experiments.spec import FaultMix, PartitionWindow, ScenarioSpec


def deterministic_metrics(spec, seed):
    entry = run_job(Job(job_id="diff", spec=spec, seed=seed, params={}))
    return entry["metrics"]


def run_both_ways(spec, seed, monkeypatch):
    monkeypatch.setattr(KeyRegistry, "memoize", True)
    cached = deterministic_metrics(spec, seed)
    monkeypatch.setattr(KeyRegistry, "memoize", False)
    uncached = deterministic_metrics(spec, seed)
    return cached, uncached


SCENARIOS = {
    "verify-heavy": ScenarioSpec(
        name="diff-verify",
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        round_timeout=0.3,
        verify_signatures=True,
        duration=4.0,
        seeds=(11,),
        block_batch_count=5,
        block_batch_bytes=500,
    ),
    "faults-partitions": ScenarioSpec(
        name="diff-faults",
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        round_timeout=0.3,
        verify_signatures=True,
        duration=5.0,
        seeds=(5,),
        faults=FaultMix(crash=1, crash_at=1.0, equivocate=1),
        partitions=(PartitionWindow(start=1.0, end=2.0, split=0.5),),
        block_batch_count=5,
        block_batch_bytes=500,
    ),
    "streamlet": ScenarioSpec(
        name="diff-streamlet",
        protocol="sft-streamlet",
        n=4,
        topology="uniform",
        round_timeout=0.3,
        verify_signatures=True,
        duration=3.0,
        seeds=(2,),
        block_batch_count=5,
        block_batch_bytes=500,
    ),
}


class TestDifferentialDeterminism:
    @pytest.mark.parametrize("label", sorted(SCENARIOS))
    def test_memoization_changes_nothing(self, label, monkeypatch):
        spec = SCENARIOS[label]
        cached, uncached = run_both_ways(spec, spec.seeds[0], monkeypatch)
        assert json.dumps(cached, sort_keys=True) == json.dumps(
            uncached, sort_keys=True
        )

    def test_same_seed_same_metrics_across_runs(self):
        spec = SCENARIOS["verify-heavy"]
        first = deterministic_metrics(spec, 11)
        second = deterministic_metrics(spec, 11)
        assert json.dumps(first, sort_keys=True) == json.dumps(
            second, sort_keys=True
        )

    def test_event_count_exposed_and_stable(self):
        spec = SCENARIOS["verify-heavy"]
        metrics = deterministic_metrics(spec, 11)
        assert metrics["events"] > 0
        assert metrics["events"] == deterministic_metrics(spec, 11)["events"]

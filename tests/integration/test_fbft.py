"""FBFT-adapted baseline (Appendix B): direct votes, quadratic messages."""

from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety
from tests.conftest import small_experiment


class TestFBFTBehaviour:
    def test_commits_and_safety(self):
        cluster = build_cluster(small_experiment(protocol="fbft")).run()
        check_commit_safety(cluster.replicas)
        assert len(cluster.replicas[0].commit_tracker.commit_order) > 50

    def test_extra_votes_are_multicast(self):
        cluster = build_cluster(small_experiment(protocol="fbft")).run()
        total_extra = sum(
            replica.extra_vote_multicasts for replica in cluster.replicas
        )
        assert total_extra > 0
        assert cluster.network.sent_by_type.get("ExtraVotesMsg", 0) > 0

    def test_direct_vote_counts_reach_n(self):
        cluster = build_cluster(small_experiment(protocol="fbft")).run()
        replica = cluster.replicas[0]
        n = cluster.config.n
        counts = [
            replica.direct_votes.count(event.block_id)
            for event in replica.commit_tracker.commit_order[10:50]
        ]
        assert max(counts) == n

    def test_strength_from_direct_votes_only(self):
        cluster = build_cluster(small_experiment(protocol="fbft")).run()
        replica = cluster.replicas[0]
        f = cluster.config.resolved_f()
        settled = replica.commit_tracker.commit_order[10:50]
        for event in settled:
            timeline = replica.commit_tracker.timeline_of(event.block_id)
            assert timeline is not None
            assert timeline.current == 2 * f

    def test_more_messages_than_sft(self):
        fbft = build_cluster(small_experiment(protocol="fbft")).run()
        sft = build_cluster(small_experiment(protocol="sft-diembft")).run()
        fbft_blocks = len(fbft.replicas[0].commit_tracker.commit_order)
        sft_blocks = len(sft.replicas[0].commit_tracker.commit_order)
        fbft_per_block = fbft.network.messages_sent / fbft_blocks
        sft_per_block = sft.network.messages_sent / sft_blocks
        # n=7: SFT ≈ 2n per block; FBFT adds up to (n-quorum)·n ≈ 14.
        assert fbft_per_block > sft_per_block * 1.5

    def test_fbft_strong_commits_faster_than_sft(self):
        # The trade-off: FBFT buys fast 2f-strong commits with O(n²) traffic.
        from repro.runtime.metrics import strong_commit_latency

        fbft = build_cluster(small_experiment(protocol="fbft", duration=6.0)).run()
        sft = build_cluster(
            small_experiment(protocol="sft-diembft", duration=6.0)
        ).run()
        f = fbft.config.resolved_f()
        fbft_latency, _, _ = strong_commit_latency(
            fbft, level=2 * f, created_before=4.0
        )
        sft_latency, _, _ = strong_commit_latency(
            sft, level=2 * f, created_before=4.0
        )
        assert fbft_latency < sft_latency

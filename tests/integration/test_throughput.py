"""Throughput pipeline end-to-end: batching, pipelining, linear votes.

Covers the full transaction path (KV workload → mempools → batched
proposals → commit feedback), the pipelined drain discipline's
duplicate suppression, the O(n²) → O(n) vote-traffic change under
linear vote collection, determinism across worker counts with every
new flag on, and — the other direction — that with every flag off the
committed campaign and bench baselines replay byte-identically.
"""

import json
import multiprocessing
from pathlib import Path

from repro.experiments import Campaign, CampaignRunner, ScenarioSpec, run_job
from repro.experiments.campaign import Job

ROOT = Path(__file__).resolve().parents[2]
SCENARIOS_DIR = ROOT / "scenarios"


def _workload_spec(**overrides):
    defaults = dict(
        name="tput",
        protocol="sft-diembft",
        n=4,
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        duration=4.0,
        round_timeout=0.5,
        seeds=(1,),
        workload_rate=500.0,
        workload_payload_bytes=64,
        batch_size=64,
    )
    defaults.update(overrides)
    return ScenarioSpec(**defaults)


def _run(spec):
    return run_job(Job(job_id=f"t/{spec.name}", spec=spec, seed=spec.seeds[0]))


class TestBatchedWorkload:
    def test_workload_commits_real_transactions(self):
        entry = _run(_workload_spec())
        metrics = entry["metrics"]
        txs = metrics["txs"]
        assert txs["submitted"] > 0
        assert 0 < txs["committed_unique"] <= txs["submitted"]
        assert txs["per_sec"] > 0
        assert txs["e2e_p50_s"] is not None
        assert txs["e2e_p50_s"] <= txs["e2e_p99_s"]
        assert metrics["regular_latency_p50_s"] <= metrics["regular_latency_p99_s"]
        assert metrics["invariants"]["ok"]

    def test_batch_size_caps_block_payloads(self):
        # A tiny batch cap under a fast workload forces a backlog: no
        # committed block may carry more than batch_size transactions.
        spec = _workload_spec(name="tput-cap", batch_size=8, workload_rate=1000.0)
        cluster = spec.build(spec.seeds[0]).run()
        reference = cluster.correct_replicas()[0]
        sizes = [
            len(reference.store.maybe_get(event.block_id).payload.transactions)
            for event in reference.commit_tracker.commit_order
        ]
        assert max(sizes) == 8

    def test_workload_off_reports_zero_txs(self):
        spec = _workload_spec(name="tput-off", workload_rate=0.0, duration=2.0)
        entry = _run(spec)
        txs = entry["metrics"]["txs"]
        assert txs == {
            "submitted": 0,
            "committed_unique": 0,
            "duplicates": 0,
            "per_sec": 0.0,
            "e2e_p50_s": None,
            "e2e_p99_s": None,
        }


class TestPipelinedProposals:
    def test_pipelining_suppresses_duplicate_proposals(self):
        # Stop-and-wait re-proposes the same front until commit
        # feedback clears it, wasting block space on duplicates;
        # the pipelined drain keeps consecutive proposals disjoint.
        base = _workload_spec(
            name="tput-pipe", workload_rate=1000.0, batch_size=32
        )
        reproposal = _run(base)["metrics"]["txs"]
        pipelined = _run(base.with_overrides(pipelined_proposals=True))[
            "metrics"
        ]["txs"]
        assert reproposal["duplicates"] > pipelined["duplicates"]
        assert pipelined["committed_unique"] > 0


class TestLinearVoteCollection:
    def test_vote_traffic_drops_from_quadratic_to_linear_at_n32(self):
        # Streamlet broadcasts votes (n per voter ⇒ n² per round);
        # linear collection sends each vote to one collector and fans
        # the certificate back out as n QCMsgs ⇒ O(n) per round.
        spec = ScenarioSpec(
            name="linear32",
            protocol="streamlet",
            n=32,
            topology="uniform",
            uniform_delay=0.01,
            streamlet_round_duration=0.1,
            duration=1.2,
            verify_signatures=False,
            seeds=(1,),
        )
        broadcast = _run(spec)["metrics"]
        linear = _run(spec.with_overrides(linear_votes=True))["metrics"]
        assert linear["commits"] == broadcast["commits"] > 0
        votes_linear = linear["messages"]["by_type"]["VoteMsg"]
        votes_broadcast = broadcast["messages"]["by_type"]["VoteMsg"]
        # n=32: broadcast is ~32× linear; leave slack for timeouts.
        assert votes_broadcast > 8 * (
            votes_linear + linear["messages"]["by_type"]["QCMsg"]
        )
        assert "QCMsg" not in broadcast["messages"]["by_type"]


class TestThroughputDeterminism:
    def test_worker_count_invariant_with_all_flags_on(self):
        campaign = Campaign(
            _workload_spec(
                name="tput-det",
                protocol="sft-streamlet",
                n=7,
                duration=3.0,
                pipelined_proposals=True,
                linear_votes=True,
                seeds=(1, 2),
            ),
            matrix={"protocol": ["sft-diembft", "sft-streamlet"]},
        )
        jobs = campaign.expand()
        serial = CampaignRunner(jobs, workers=1, name="t").run()
        workers = min(2, multiprocessing.cpu_count())
        parallel = CampaignRunner(jobs, workers=workers, name="t").run()
        assert json.dumps(
            [entry["metrics"] for entry in serial["jobs"]], sort_keys=True
        ) == json.dumps(
            [entry["metrics"] for entry in parallel["jobs"]], sort_keys=True
        )
        for entry in serial["jobs"]:
            assert entry["metrics"]["txs"]["committed_unique"] > 0


class TestFlagsOffBaselines:
    """Default-off discipline: no flag ⇒ byte-identical replays."""

    def test_smoke_campaign_replays_committed_baseline(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "smoke.toml")
        report = CampaignRunner(
            campaign.expand(), workers=1, name=campaign.name
        ).run()
        baseline = json.loads(
            (SCENARIOS_DIR / "baselines" / "smoke_campaign.json").read_text()
        )
        assert json.dumps(
            [entry["metrics"] for entry in report["jobs"]], sort_keys=True
        ) == json.dumps(
            [entry["metrics"] for entry in baseline["jobs"]], sort_keys=True
        )

    def test_smoke_bench_cases_match_committed_ci_baseline(self):
        # Deterministic counters (events/commits/messages) of the two
        # cheapest smoke-suite cases must replay the committed CI
        # baseline exactly; wall clocks are hardware-bound and ignored.
        from repro.perf import smoke_suite, suite_jobs

        cases = [
            case
            for case in smoke_suite()
            if case.name in ("happy_n4", "fuzz_smoke_seed7")
        ]
        assert len(cases) == 2
        baseline = json.loads((ROOT / "BENCH_ci_baseline.json").read_text())
        by_name = {entry["name"]: entry for entry in baseline["benchmarks"]}
        for case, job in zip(cases, suite_jobs(cases)):
            entry = run_job(job)
            base = by_name[case.name]
            assert entry["metrics"]["events"] == base["events"], case.name
            assert entry["metrics"]["commits"] == base["commits"], case.name
            assert (
                entry["metrics"]["messages"]["sent"] == base["messages_sent"]
            ), case.name

"""DiemBFT end-to-end over the simulated network."""

from repro.runtime.config import build_cluster
from repro.runtime.metrics import (
    check_commit_safety,
    regular_commit_latency,
    throughput_txps,
)
from tests.conftest import small_experiment


class TestHappyPath:
    def test_commits_progress_on_all_replicas(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        for replica in cluster.replicas:
            assert len(replica.commit_tracker.commit_order) > 50

    def test_safety_across_replicas(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        check_commit_safety(cluster.replicas)

    def test_rounds_advance_without_timeouts(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        for replica in cluster.replicas:
            assert replica.timeouts_sent == 0
            assert replica.current_round > 100

    def test_commit_latency_about_three_round_trips(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        mean, count = regular_commit_latency(cluster)
        assert count > 100
        # Round ≈ 2 × 10 ms + jitter; 3-chain + QC dissemination ≈ 4 rounds.
        assert 0.04 < mean < 0.2

    def test_throughput_positive(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        assert throughput_txps(cluster) > 100

    def test_leaders_rotate_round_robin(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        replica = cluster.replicas[0]
        committed = replica.committed_blocks()
        proposers = set()
        for event in committed:
            block = replica.store.get(event.block_id)
            if not block.is_genesis():
                proposers.add(block.proposer)
                assert block.proposer == block.round % cluster.config.n
        assert proposers == set(range(cluster.config.n))

    def test_chains_are_consistent_prefixes(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).run()
        sequences = []
        for replica in cluster.replicas:
            sequences.append(
                [event.block_id for event in replica.commit_tracker.commit_order]
            )
        shortest = min(len(seq) for seq in sequences)
        reference = sequences[0][:shortest]
        for sequence in sequences[1:]:
            assert sequence[:shortest] == reference

    def test_deterministic_given_seed(self):
        run_a = build_cluster(small_experiment(protocol="diembft")).run()
        run_b = build_cluster(small_experiment(protocol="diembft")).run()
        commits_a = [
            event.block_id
            for event in run_a.replicas[0].commit_tracker.commit_order
        ]
        commits_b = [
            event.block_id
            for event in run_b.replicas[0].commit_tracker.commit_order
        ]
        assert commits_a == commits_b

    def test_different_seed_changes_schedule(self):
        run_a = build_cluster(small_experiment(protocol="diembft", seed=1)).run()
        run_b = build_cluster(small_experiment(protocol="diembft", seed=2)).run()
        # Jitter reshuffles vote-arrival races, so QC membership across
        # the run differs even though block contents do not.
        def memberships(cluster):
            replica = cluster.replicas[0]
            return [
                tuple(sorted(replica.store.qc_for(event.block_id).voters()))
                for event in replica.commit_tracker.commit_order[:100]
                if replica.store.qc_for(event.block_id) is not None
                and event.round > 0
            ]

        assert memberships(run_a) != memberships(run_b)


class TestValidation:
    def test_invalid_signatures_rejected(self):
        # Run with signature verification on and a forged message inject.
        cluster = build_cluster(small_experiment(protocol="diembft")).build()
        replica = cluster.replicas[0]
        from repro.types.messages import VoteMsg
        from repro.types.vote import Vote

        forged = Vote(
            block_id=replica.genesis.id(),
            block_round=1,
            height=1,
            voter=3,
            signature=None,
        )
        replica.deliver(3, VoteMsg(sender=3, vote=forged))
        assert replica.invalid_messages == 1

    def test_wrong_leader_proposal_rejected(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).build()
        replica = cluster.replicas[0]
        from repro.types.block import Block
        from repro.types.messages import ProposalMsg

        block = Block(
            parent_id=replica.genesis.id(),
            qc=replica.qc_high,
            round=1,
            height=1,
            proposer=5,  # leader of round 1 is replica 1
        )
        replica.deliver(5, ProposalMsg(sender=5, round=1, block=block))
        assert replica.invalid_messages == 1

    def test_mismatched_sender_rejected(self):
        cluster = build_cluster(small_experiment(protocol="diembft")).build()
        replica = cluster.replicas[0]
        from repro.types.block import Block
        from repro.types.messages import ProposalMsg

        block = Block(
            parent_id=replica.genesis.id(),
            qc=replica.qc_high,
            round=1,
            height=1,
            proposer=1,
        )
        replica.deliver(2, ProposalMsg(sender=1, round=1, block=block))
        assert replica.invalid_messages == 1

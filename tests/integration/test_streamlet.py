"""Streamlet and SFT-Streamlet end-to-end."""

from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety, throughput_txps
from tests.conftest import small_experiment


def streamlet_experiment(**overrides):
    defaults = dict(protocol="streamlet", duration=6.0)
    defaults.update(overrides)
    return small_experiment(**defaults)


class TestStreamlet:
    def test_lock_step_commits(self):
        cluster = build_cluster(streamlet_experiment()).run()
        for replica in cluster.replicas:
            assert len(replica.commit_tracker.commit_order) > 30

    def test_safety(self):
        cluster = build_cluster(streamlet_experiment()).run()
        check_commit_safety(cluster.replicas)

    def test_votes_are_multicast_and_echoed(self):
        cluster = build_cluster(streamlet_experiment()).run()
        stats = cluster.network.stats()["by_type"]
        assert stats.get("VoteMsg", 0) > 0
        assert stats.get("EchoMsg", 0) > stats.get("VoteMsg", 0)

    def test_echo_disabled_cuts_traffic(self):
        with_echo = build_cluster(streamlet_experiment()).run()
        config = streamlet_experiment()
        cluster = build_cluster(config)
        cluster.build()
        # Echo is a StreamletConfig flag; rebuild with it off.
        config_no_echo = streamlet_experiment()
        no_echo_cluster = build_cluster(config_no_echo)
        no_echo_cluster.build()
        for replica in no_echo_cluster.replicas:
            replica.config.echo_enabled = False
        no_echo_cluster.run()
        assert (
            no_echo_cluster.network.messages_sent
            < with_echo.network.messages_sent
        )
        check_commit_safety(no_echo_cluster.replicas)
        del cluster

    def test_commit_is_middle_of_three_chain(self):
        cluster = build_cluster(streamlet_experiment()).run()
        replica = cluster.replicas[0]
        last = replica.commit_tracker.commit_order[-1]
        # The committed block's child and the child's child are certified.
        children = replica.store.children(last.block_id)
        assert children
        assert any(
            replica.store.is_certified(child) for child in children
        )

    def test_throughput_positive(self):
        cluster = build_cluster(streamlet_experiment()).run()
        assert throughput_txps(cluster) > 50


class TestSFTStreamlet:
    def test_strong_commits_progress(self):
        cluster = build_cluster(
            streamlet_experiment(protocol="sft-streamlet")
        ).run()
        replica = cluster.replicas[0]
        f = cluster.config.resolved_f()
        reached = [
            timeline.current
            for _, timeline in replica.commit_tracker.timelines()
        ]
        assert reached and max(reached) == 2 * f

    def test_safety(self):
        cluster = build_cluster(
            streamlet_experiment(protocol="sft-streamlet")
        ).run()
        check_commit_safety(cluster.replicas)

    def test_height_markers_zero_without_forks(self):
        cluster = build_cluster(
            streamlet_experiment(protocol="sft-streamlet")
        ).run()
        replica = cluster.replicas[0]
        qc = None
        for event in reversed(replica.commit_tracker.commit_order):
            qc = replica.store.qc_for(event.block_id)
            if qc is not None and qc.votes:
                break
        assert qc is not None
        assert all(vote.marker == 0 for vote in qc.votes)

    def test_strength_same_at_all_replicas_eventually(self):
        cluster = build_cluster(
            streamlet_experiment(protocol="sft-streamlet")
        ).run()
        f = cluster.config.resolved_f()
        # A block committed early should be 2f-strong everywhere.
        reference = cluster.replicas[0].commit_tracker.commit_order[5]
        for replica in cluster.replicas:
            timeline = replica.commit_tracker.timeline_of(reference.block_id)
            assert timeline is not None
            assert timeline.current == 2 * f

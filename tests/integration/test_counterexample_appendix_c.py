"""Appendix C: naive indirect-vote counting is unsafe; markers fix it."""

import pytest

from repro.adversary import AppendixCScenario


class TestAppendixC:
    def test_naive_counting_violates_definition_1(self):
        result = AppendixCScenario(f=2).run()
        assert result.naive_violates_definition_1()
        assert result.naive_main_strength >= result.f + 1
        assert result.naive_fork_strength >= result.f + 1

    def test_sft_markers_prevent_the_violation(self):
        result = AppendixCScenario(f=2).run()
        assert result.sft_is_safe()
        # The main chain must stay at exactly f-strong: h_{f+1}'s vote
        # (marker r+1) endorses B_{r+2} but not B_r or B_{r+1}.
        assert result.sft_main_strength == result.f

    def test_fork_may_reach_f_plus_1_under_sft(self):
        # Permitted by Definition 1: with t = f + 1 the f-strong
        # guarantee on the main chain is void.
        result = AppendixCScenario(f=2).run()
        assert result.sft_fork_strength == result.f + 1

    @pytest.mark.parametrize("f", [2, 3, 4, 7])
    def test_holds_for_all_f(self, f):
        result = AppendixCScenario(f=f).run()
        assert result.naive_violates_definition_1()
        assert result.sft_is_safe()
        assert result.sft_main_strength == f

    def test_conflicting_rounds_reported(self):
        result = AppendixCScenario(f=2).run()
        assert result.fork_block_round > result.main_block_round

    def test_small_f_rejected(self):
        with pytest.raises(ValueError):
            AppendixCScenario(f=1)

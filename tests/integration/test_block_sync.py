"""End-to-end block-sync / catch-up behaviour.

The scenarios here are the subsystem's reason to exist: replicas that
the pre-sync protocols left permanently starved (withheld proposals,
dead QC aggregators, partitions) now recover and commit, while
``sync_enabled=False`` reproduces the original starvation exactly.
"""

import json

from repro.experiments.campaign import Job
from repro.experiments.runner import run_job
from repro.experiments.spec import FaultMix, PartitionWindow, ScenarioSpec


def run_spec(spec):
    cluster = spec.build(spec.seeds[0])
    cluster.run()
    return cluster


def commit_counts(cluster):
    return {
        replica.replica_id: len(replica.commit_tracker.commit_order)
        for replica in cluster.replicas
    }


def withhold_spec(**overrides):
    """A quorum-reach withholding leader: skipped replicas starve
    without sync (the fuzzer's withhold-outcast find)."""
    params = dict(
        name="sync-withhold",
        protocol="sft-diembft",
        n=4,
        topology="uniform",
        uniform_delay=0.012,
        round_timeout=0.3,
        duration=7.0,
        seeds=(53,),
        block_batch_count=2,
        block_batch_bytes=100,
        faults=FaultMix(withhold=1, withhold_reach=0.67),
    )
    params.update(overrides)
    return ScenarioSpec(**params)


class TestWithholdCatchUp:
    def test_skipped_replica_starves_without_sync(self):
        cluster = run_spec(withhold_spec(sync_enabled=False))
        counts = commit_counts(cluster)
        assert counts[2] == 0, counts
        assert counts[0] > 0 and counts[1] > 0

    def test_skipped_replica_catches_up_with_sync(self):
        cluster = run_spec(withhold_spec(sync_enabled=True))
        counts = commit_counts(cluster)
        assert all(count > 0 for count in counts.values()), counts
        # The starved replica recovered via sync, within a round or
        # two of everyone else.
        assert counts[2] >= counts[0] - 4
        stats = cluster.replicas[2].sync.stats()
        assert stats["blocks_synced"] > 0
        assert stats["invalid_responses"] == 0


class TestRotationStarvationRecovery:
    def test_dead_aggregator_qc_recovered_from_timeout_votes(self):
        # n=4 + one crash: votes for every fourth round go to the
        # crashed collector.  Timeout-attached votes let the remaining
        # replicas re-aggregate those QCs and complete 3-chains.
        spec = ScenarioSpec(
            name="sync-rotation",
            protocol="sft-diembft",
            n=4,
            topology="uniform",
            uniform_delay=0.01,
            round_timeout=0.3,
            duration=8.0,
            seeds=(11,),
            block_batch_count=2,
            block_batch_bytes=100,
            faults=FaultMix(crash=1, crash_at=0.5),
        )
        starved = run_spec(spec.with_overrides(sync_enabled=False))
        recovered = run_spec(spec.with_overrides(sync_enabled=True))

        def commits_after(cluster, cutoff):
            return {
                replica.replica_id: sum(
                    1
                    for event in replica.commit_tracker.commit_order
                    if event.committed_at > cutoff
                )
                for replica in cluster.replicas
                if not replica.crashed
            }

        # Without sync: nothing commits after the crash settles.
        assert all(
            count == 0 for count in commits_after(starved, 2.0).values()
        ), commits_after(starved, 2.0)
        # With sync: timeout-vote recovery keeps commits flowing on
        # every surviving replica.
        late = commits_after(recovered, 2.0)
        assert all(count > 0 for count in late.values()), late


class TestSyncWithholdingPeers:
    def test_response_withholding_peer_forces_rotation(self):
        # n=7: the withholding leader (id 6) reaches a quorum but skips
        # ids 4 and 5; id 5 additionally never answers sync requests,
        # so id 4's fetches must rotate past it.
        spec = withhold_spec(
            name="sync-mute-peer",
            n=7,
            duration=8.0,
            faults=FaultMix(withhold=1, withhold_reach=0.67, sync_withhold=1),
        )
        cluster = run_spec(spec)
        counts = commit_counts(cluster)
        byzantine = set(cluster.byzantine_ids)
        assert {5, 6} == byzantine
        for replica_id, count in counts.items():
            if replica_id not in byzantine:
                assert count > 0, counts
        rotations = sum(
            replica.sync.stats()["peer_rotations"]
            for replica in cluster.replicas
        )
        assert rotations > 0

    def test_sync_withholder_alone_is_harmless(self):
        spec = withhold_spec(
            name="sync-mute-only",
            n=4,
            faults=FaultMix(sync_withhold=1),
        )
        cluster = run_spec(spec)
        counts = commit_counts(cluster)
        assert all(count > 0 for count in counts.values()), counts


class TestSyncUnderPartition:
    def test_catch_up_resumes_after_heal(self):
        # The starved replica is also partitioned away mid-run: its
        # fetches stall (requests held at the partition boundary) and
        # must succeed after the heal.
        spec = withhold_spec(
            name="sync-partition",
            duration=10.0,
            partitions=(
                PartitionWindow(start=1.0, end=4.0, groups=((2,), (0, 1, 3))),
            ),
        )
        cluster = run_spec(spec)
        counts = commit_counts(cluster)
        assert all(count > 0 for count in counts.values()), counts
        events = cluster.replicas[2].commit_tracker.commit_order
        assert any(event.committed_at > 4.0 for event in events)


class TestSyncOffDeterminism:
    def test_sync_off_metrics_are_byte_identical(self):
        spec = withhold_spec(sync_enabled=False)
        first = run_job(Job(job_id="d", spec=spec, seed=spec.seeds[0]))
        second = run_job(Job(job_id="d", spec=spec, seed=spec.seeds[0]))
        assert json.dumps(first["metrics"], sort_keys=True) == json.dumps(
            second["metrics"], sort_keys=True
        )

    def test_sync_on_metrics_are_deterministic_too(self):
        spec = withhold_spec(sync_enabled=True)
        first = run_job(Job(job_id="d", spec=spec, seed=spec.seeds[0]))
        second = run_job(Job(job_id="d", spec=spec, seed=spec.seeds[0]))
        assert json.dumps(first["metrics"], sort_keys=True) == json.dumps(
            second["metrics"], sort_keys=True
        )

"""Campaign engine end-to-end: determinism, parallelism, CLI, scenarios."""

import io
import json
import multiprocessing
from contextlib import redirect_stderr, redirect_stdout
from pathlib import Path

import pytest

from repro.cli import main as cli_main
from repro.experiments import (
    Campaign,
    CampaignRunner,
    ScenarioSpec,
    load_report,
    run_job,
    save_report,
)

SCENARIOS_DIR = Path(__file__).resolve().parents[2] / "scenarios"


def _tiny_campaign(seeds=(1,), **overrides):
    defaults = dict(
        name="tiny",
        protocol="sft-diembft",
        n=7,
        topology="uniform",
        uniform_delay=0.01,
        jitter=0.002,
        duration=4.0,
        round_timeout=0.5,
        seeds=seeds,
        block_batch_count=10,
        block_batch_bytes=1_000,
    )
    defaults.update(overrides)
    return Campaign(
        ScenarioSpec(**defaults), matrix={"protocol": ["diembft", "sft-diembft"]}
    )


class TestDeterminism:
    def test_same_seed_job_is_byte_identical(self):
        job = _tiny_campaign().expand()[1]
        first = run_job(job)
        second = run_job(job)
        assert json.dumps(first["metrics"], sort_keys=True) == json.dumps(
            second["metrics"], sort_keys=True
        )

    def test_different_seeds_differ(self):
        jobs = _tiny_campaign(seeds=(1, 2)).expand()
        results = [run_job(job) for job in jobs if "sft" in job.job_id]
        assert results[0]["metrics"] != results[1]["metrics"]

    def test_parallel_equals_serial(self):
        jobs = _tiny_campaign(seeds=(1, 2)).expand()
        serial = CampaignRunner(jobs, workers=1, name="t").run()
        parallel = CampaignRunner(jobs, workers=2, name="t").run()
        assert [entry["job_id"] for entry in serial["jobs"]] == [
            entry["job_id"] for entry in parallel["jobs"]
        ]
        assert json.dumps(
            [entry["metrics"] for entry in serial["jobs"]], sort_keys=True
        ) == json.dumps(
            [entry["metrics"] for entry in parallel["jobs"]], sort_keys=True
        )


class TestSixteenJobMatrix:
    """The acceptance matrix: scenarios/parallel16.toml, 4 workers vs 1."""

    def test_workers_do_not_change_results(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "parallel16.toml")
        jobs = campaign.expand()
        assert len(jobs) == 16
        serial = CampaignRunner(jobs, workers=1, name=campaign.name).run()
        workers = min(4, multiprocessing.cpu_count())
        parallel = CampaignRunner(jobs, workers=workers, name=campaign.name).run()
        assert json.dumps(
            [entry["metrics"] for entry in serial["jobs"]], sort_keys=True
        ) == json.dumps(
            [entry["metrics"] for entry in parallel["jobs"]], sort_keys=True
        )
        # Wall-clock is recorded in both reports; with real parallelism
        # available the fan-out must not be slower than ~serial.
        assert serial["wall_clock_s"] > 0
        assert parallel["wall_clock_s"] > 0
        if workers >= 4:
            assert parallel["wall_clock_s"] < serial["wall_clock_s"]

    def test_every_job_safe_and_committing(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "parallel16.toml")
        report = CampaignRunner(
            campaign.expand(), workers=min(4, multiprocessing.cpu_count())
        ).run()
        assert report["summary"]["all_safe"]
        for entry in report["jobs"]:
            assert entry["metrics"]["commits"] > 0, entry["job_id"]


class TestBundledScenarios:
    def test_all_scenarios_load_and_expand(self):
        paths = sorted(SCENARIOS_DIR.glob("*.toml"))
        assert len(paths) >= 8
        for path in paths:
            campaign = Campaign.from_file(path)
            jobs = campaign.expand()
            assert jobs, path.name
            assert len({job.job_id for job in jobs}) == len(jobs)

    def test_smoke_scenario_is_ci_sized(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "smoke.toml")
        assert campaign.job_count() <= 8
        assert campaign.base.duration <= 10.0

    def test_partition_heal_scenario_stalls_then_recovers(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "partition_heal.toml")
        entry = run_job(campaign.expand()[0])
        metrics = entry["metrics"]
        assert metrics["safety_ok"]
        # The partition wastes rounds but commits resume after healing.
        assert metrics["chain"]["skipped_rounds"] > 0
        assert metrics["commits"] > 50

    def test_mixed_faults_scenario_stays_safe(self):
        campaign = Campaign.from_file(SCENARIOS_DIR / "mixed_faults.toml")
        entry = run_job(campaign.expand()[0])
        assert entry["metrics"]["safety_ok"]
        assert entry["metrics"]["strong_safety_violations"] == 0
        assert entry["metrics"]["commits"] > 0


class TestCampaignCLI:
    def _run_cli(self, argv):
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(argv)
        return code, stdout.getvalue(), stderr.getvalue()

    def _write_spec(self, tmp_path):
        spec = tmp_path / "mini.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "mini"',
                    'topology = "uniform"',
                    "n = 4",
                    "duration = 3.0",
                    "round_timeout = 0.5",
                    "block_batch_count = 10",
                    "block_batch_bytes = 1000",
                    "seeds = [1]",
                    "[matrix]",
                    'protocol = ["diembft", "sft-diembft"]',
                ]
            )
        )
        return spec

    def test_campaign_run_writes_report(self, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        code, stdout, stderr = self._run_cli(
            ["campaign", "run", str(spec), "--workers", "2", "--out", str(out)]
        )
        assert code == 0
        assert "mini/protocol=diembft,seed=1" in stdout
        report = load_report(out)
        assert report["job_count"] == 2
        assert report["wall_clock_s"] > 0
        assert report["summary"]["all_safe"]

    def test_campaign_report_command(self, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        assert self._run_cli(
            ["campaign", "run", str(spec), "--out", str(out)]
        )[0] == 0
        code, stdout, _ = self._run_cli(["campaign", "report", str(out)])
        assert code == 0
        assert "total commits:" in stdout

    def test_campaign_diff_detects_injected_regression(self, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        self._run_cli(["campaign", "run", str(spec), "--out", str(out)])
        report = load_report(out)

        # Identical reports: clean diff.
        baseline_path = tmp_path / "baseline.json"
        save_report(report, baseline_path)
        code, stdout, _ = self._run_cli(
            ["campaign", "diff", str(out), str(baseline_path)]
        )
        assert code == 0
        assert "no regressions" in stdout

        # Inject a 2x latency regression into the current report.
        regressed = json.loads(json.dumps(report))
        regressed["jobs"][0]["metrics"]["regular_latency_s"] *= 2.0
        regressed_path = tmp_path / "regressed.json"
        save_report(regressed, regressed_path)
        code, stdout, _ = self._run_cli(
            ["campaign", "diff", str(regressed_path), str(baseline_path)]
        )
        assert code == 1
        assert "regular_latency_s" in stdout

    def test_campaign_run_fails_against_regressed_baseline(self, tmp_path):
        spec = self._write_spec(tmp_path)
        out = tmp_path / "report.json"
        self._run_cli(["campaign", "run", str(spec), "--out", str(out)])
        report = load_report(out)
        # A baseline that demands impossibly few messages per commit.
        for entry in report["jobs"]:
            entry["metrics"]["messages"]["per_commit"] /= 10.0
        baseline_path = tmp_path / "baseline.json"
        save_report(report, baseline_path)
        code, stdout, _ = self._run_cli(
            ["campaign", "run", str(spec), "--baseline", str(baseline_path)]
        )
        assert code == 1
        assert "regression" in stdout

    def test_missing_spec_file_errors(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(tmp_path / "nope.toml")])
        assert excinfo.value.code == 2

    def test_typoed_spec_key_errors_cleanly(self, tmp_path):
        spec = tmp_path / "typo.toml"
        spec.write_text('name = "t"\nprotcol = "diembft"\n')
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(spec)])
        assert excinfo.value.code == 2

    def test_cross_axis_invalid_combo_errors_cleanly(self, tmp_path):
        spec = tmp_path / "combo.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "combo"',
                    "n = 7",
                    "duration = 2.0",
                    "[matrix]",
                    "n = [7, 4]",
                    '"faults.crash" = [0, 5]',
                ]
            )
        )
        stdout, stderr = io.StringIO(), io.StringIO()
        with redirect_stdout(stdout), redirect_stderr(stderr):
            code = cli_main(["campaign", "run", str(spec)])
        assert code == 2
        assert "error:" in stderr.getvalue()

    def test_inverted_partition_window_errors_cleanly(self, tmp_path):
        spec = tmp_path / "inverted.toml"
        spec.write_text(
            "\n".join(
                [
                    'name = "inverted"',
                    "n = 4",
                    "[[partitions]]",
                    "start = 5.0",
                    "end = 2.0",
                ]
            )
        )
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(spec)])
        assert excinfo.value.code == 2

    def test_negative_latency_errors_cleanly(self, tmp_path):
        spec = tmp_path / "latency.toml"
        spec.write_text('name = "l"\nn = 4\njitter = -0.5\n')
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(spec)])
        assert excinfo.value.code == 2

    def test_nan_latency_errors_cleanly(self, tmp_path):
        spec = tmp_path / "nan.toml"
        spec.write_text('name = "n"\nn = 4\nuniform_delay = nan\n')
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(spec)])
        assert excinfo.value.code == 2

    def test_overfull_fault_mix_errors_cleanly(self, tmp_path):
        spec = tmp_path / "overfull.toml"
        spec.write_text(
            'name = "o"\nn = 4\n[faults]\nsilent = 3\nequivocate = 2\n'
        )
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "run", str(spec)])
        assert excinfo.value.code == 2

    def test_malformed_report_errors_cleanly(self, tmp_path):
        bad = tmp_path / "bad.json"
        bad.write_text("{not json")
        with pytest.raises(SystemExit) as excinfo:
            self._run_cli(["campaign", "report", str(bad)])
        assert excinfo.value.code == 2

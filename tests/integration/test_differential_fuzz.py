"""Differential fuzzing: the same seed under plain vs SFT protocols.

One generated schedule runs under the plain protocol and its SFT
variant.  Cross-protocol property: the SFT variant must never report
*weaker* strength than the plain protocol's implicit guarantee — every
block an honest SFT observer commits must be at least ``f``-strong
(a regular commit certifies ``2f + 1`` direct endorsers, so SFT's
bookkeeping can only add to the plain commit, never subtract).  Both
runs must hold every oracle invariant.
"""

from dataclasses import replace

import pytest

from repro.analysis.invariants import check_cluster_invariants, honest_observers
from repro.fuzz import SMOKE_PROFILE, generate_spec

#: Same schedule space as CI smoke fuzz, minus the cases that have no
#: plain-protocol counterpart (scripted Appendix C, naive accounting).
DIFF_PROFILE = replace(
    SMOKE_PROFILE, name="diff", scripted_rate=0.0, naive_rate=0.0
)

PAIRS = (("diembft", "sft-diembft"), ("streamlet", "sft-streamlet"))
SEEDS = (0, 1, 2)


def _run(spec, seed):
    cluster = spec.build(seed).run()
    violations = check_cluster_invariants(cluster, spec)
    assert not violations, [violation.detail for violation in violations]
    return cluster


@pytest.mark.parametrize("plain,sft", PAIRS, ids=lambda value: value)
def test_sft_variant_never_weaker_than_plain(plain, sft):
    committed_strong = 0
    for seed in SEEDS:
        base = generate_spec(seed, DIFF_PROFILE)
        _run(base.with_overrides(protocol=plain), seed)
        sft_cluster = _run(base.with_overrides(protocol=sft), seed)

        f = sft_cluster.config.resolved_f()
        for replica in honest_observers(sft_cluster):
            for event in replica.commit_tracker.commit_order:
                block = replica.store.maybe_get(event.block_id)
                if block is None or block.is_genesis():
                    continue
                strength = replica.commit_tracker.strength_of(event.block_id)
                assert strength >= f, (
                    f"seed {seed}: block at height {event.height} committed "
                    f"by replica {replica.replica_id} has strength "
                    f"{strength} < f = {f}"
                )
                committed_strong += 1
    assert committed_strong > 0, "no commits across any differential seed"


@pytest.mark.parametrize("plain,sft", PAIRS, ids=lambda value: value)
def test_generated_schedule_identical_across_protocols(plain, sft):
    """The differential pair really is the *same* schedule."""
    for seed in SEEDS:
        base = generate_spec(seed, DIFF_PROFILE)
        plain_spec = base.with_overrides(protocol=plain)
        sft_spec = base.with_overrides(protocol=sft)
        assert plain_spec.with_overrides(protocol="diembft") == (
            sft_spec.with_overrides(protocol="diembft")
        )
        assert plain_spec.faults == sft_spec.faults
        assert plain_spec.partitions == sft_spec.partitions

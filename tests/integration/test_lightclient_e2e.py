"""Light client against a live SFT-DiemBFT run (Section 5 end to end)."""

from repro.lightclient import LightClient, StrongCommitProof, build_proof
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


class TestLightClientEndToEnd:
    def _run(self):
        cluster = build_cluster(small_experiment(duration=8.0)).run()
        client = LightClient(
            cluster.registry, n=cluster.config.n, f=cluster.config.resolved_f()
        )
        return cluster, client

    def test_commit_logs_appear_in_proposals(self):
        cluster, _ = self._run()
        replica = cluster.replicas[0]
        logged = [
            block
            for block in replica.store.all_blocks()
            if block.commit_log
        ]
        assert logged

    def test_client_accepts_real_proofs(self):
        cluster, client = self._run()
        replica = cluster.replicas[0]
        verified_entries = 0
        for block in replica.store.all_blocks():
            if not block.commit_log:
                continue
            proof = build_proof(replica.store, block.id())
            if proof is None:
                continue
            verified_entries += len(client.verify(proof))
        assert verified_entries > 10

    def test_client_strength_matches_replica_view(self):
        cluster, client = self._run()
        replica = cluster.replicas[0]
        for block in replica.store.all_blocks():
            proof = build_proof(replica.store, block.id())
            if proof is not None:
                client.verify(proof)
        f = cluster.config.resolved_f()
        checked = 0
        for block_id_bytes, proven in client.proven_levels.items():
            from repro.crypto.hashing import HashDigest

            block_id = HashDigest(block_id_bytes)
            actual = replica.commit_tracker.strength_of(block_id)
            # The replica's live view is at least as fresh as any proof.
            assert f <= proven <= max(actual, proven)
            assert proven <= actual
            checked += 1
        assert checked > 10

    def test_tampered_proof_rejected(self):
        cluster, client = self._run()
        replica = cluster.replicas[0]
        import pytest

        from repro.lightclient import ProofError
        from repro.types.quorum_cert import QuorumCertificate

        for block in replica.store.all_blocks():
            proof = build_proof(replica.store, block.id())
            if proof is None:
                continue
            truncated = QuorumCertificate(
                block_id=proof.qc.block_id,
                round=proof.qc.round,
                height=proof.qc.height,
                votes=proof.qc.votes[:2],  # below quorum
            )
            with pytest.raises(ProofError):
                client.verify(StrongCommitProof(block=proof.block, qc=truncated))
            break

"""State machine replication end to end: every replica computes the
same state — the linearizable-log contract of Section 2."""

import random

from repro.app import KVCommand, LedgerExecutor
from repro.runtime.client import Mempool
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


def run_kv_workload(duration=8.0, command_count=300, seed=5, crash=None,
                    protocol="sft-diembft"):
    """Drive a cluster with a randomized KV workload via mempools."""
    overrides = dict(protocol=protocol, duration=duration, seed=seed)
    if crash:
        overrides["crash_schedule"] = crash
    cluster = build_cluster(small_experiment(**overrides)).build()
    mempools = {}
    for replica in cluster.replicas:
        mempool = Mempool(max_block_transactions=20)
        replica.payload_source = mempool.make_payload
        mempools[replica.replica_id] = mempool
    from repro.runtime.client import CommitFeedback

    CommitFeedback(cluster, mempools).start()

    rng = random.Random(seed)
    accounts = [f"acct{i}" for i in range(5)]
    sequence = 0
    for account in accounts:
        command = KVCommand(op="set", key=account, value="100")
        txn = command.to_transaction(client_id=0, sequence=sequence)
        sequence += 1
        for mempool in mempools.values():
            mempool.submit(txn)
    for _ in range(command_count):
        kind = rng.random()
        if kind < 0.5:
            command = KVCommand(
                op="transfer",
                key=rng.choice(accounts),
                key2=rng.choice(accounts),
                amount=rng.randint(1, 30),
            )
        elif kind < 0.8:
            command = KVCommand(
                op="set", key=f"k{rng.randint(0, 20)}",
                value=str(rng.randint(0, 999)),
            )
        else:
            command = KVCommand(op="del", key=f"k{rng.randint(0, 20)}")
        txn = command.to_transaction(client_id=1, sequence=sequence)
        sequence += 1
        for mempool in mempools.values():
            mempool.submit(txn)

    cluster.run(duration)
    return cluster


class TestLinearizability:
    def test_all_replicas_compute_identical_state(self):
        cluster = run_kv_workload()
        executors = [
            LedgerExecutor(replica)
            for replica in cluster.replicas
            if not replica.crashed
        ]
        for executor in executors:
            assert executor.sync() > 10
        # Replicas may be at different log lengths; compare the state
        # over the shared committed prefix by re-executing it.
        shortest = min(
            len(executor.replica.commit_tracker.commit_order)
            for executor in executors
        )
        hashes = set()
        for executor in executors:
            from repro.app import KVStateMachine

            machine = KVStateMachine()
            seen = set()
            replica = executor.replica
            for event in replica.commit_tracker.commit_order[:shortest]:
                block = replica.store.maybe_get(event.block_id)
                for transaction in block.payload.transactions:
                    txid = transaction.txid()
                    if txid in seen:
                        continue
                    seen.add(txid)
                    machine.apply_transaction(transaction)
            hashes.add(machine.state_hash())
        assert len(hashes) == 1

    def test_conservation_of_balance(self):
        cluster = run_kv_workload()
        replica = cluster.replicas[0]
        executor = LedgerExecutor(replica)
        executor.sync()
        total = sum(
            int(executor.state.get(f"acct{i}") or 0) for i in range(5)
        )
        assert total == 500  # transfers conserve the account sum

    def test_state_agreement_survives_crashes(self):
        cluster = run_kv_workload(
            duration=12.0, crash=((6, 2.0),), seed=9
        )
        executors = [
            LedgerExecutor(replica)
            for replica in cluster.replicas
            if not replica.crashed
        ]
        hashes = set()
        shortest = min(
            len(replica.commit_tracker.commit_order)
            for replica in cluster.replicas
            if not replica.crashed
        )
        assert shortest > 10
        for executor in executors:
            from repro.app import KVStateMachine

            machine = KVStateMachine()
            seen = set()
            replica = executor.replica
            for event in replica.commit_tracker.commit_order[:shortest]:
                block = replica.store.maybe_get(event.block_id)
                for transaction in block.payload.transactions:
                    txid = transaction.txid()
                    if txid in seen:
                        continue
                    seen.add(txid)
                    machine.apply_transaction(transaction)
            hashes.add(machine.state_hash())
        assert len(hashes) == 1

    def test_incremental_sync_is_idempotent(self):
        cluster = run_kv_workload(duration=4.0)
        executor = LedgerExecutor(cluster.replicas[0])
        first = executor.sync()
        assert first > 0
        assert executor.sync() == 0
        digest = executor.state_hash()
        executor.sync()
        assert executor.state_hash() == digest

    def test_streamlet_reaches_same_state_shape(self):
        cluster = run_kv_workload(duration=6.0, protocol="sft-streamlet")
        executors = [LedgerExecutor(r) for r in cluster.replicas]
        for executor in executors:
            executor.sync()
        shortest = min(e.blocks_executed for e in executors)
        assert shortest > 5

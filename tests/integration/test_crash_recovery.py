"""Crash-recovery fault model: durable voting-state WAL, restart and
rejoin, and the amnesia differential.

The load-bearing test of the crash-recovery subsystem is the
differential at the bottom: one crash/restart schedule, run twice.
With ``recover`` the reborn replicas reload their write-ahead voting
record, refuse every round they already voted in, catch up via
block-sync, and the run commits cleanly.  With ``amnesia`` — the same
schedule, restarting from a blank disk — the reborn quorum forgets its
votes, rebuilds a conflicting chain from genesis, and drags the one
honest observer into committing both histories: the oracle reports
double-vote and prefix-consistency violations and ships a
flight-recorder dump.  The WAL is exactly the difference between the
two runs.
"""

import functools

import pytest

from repro.experiments import FaultMix, ScenarioSpec
from repro.fuzz import evaluate_case
from repro.runtime.config import PROTOCOLS


def recovery_spec(protocol, fault_kind, count=3, **overrides):
    """n=4 schedule crashing ``count`` replicas at 2.5s for 1s."""
    params = dict(
        name=f"crash-recovery-{protocol}-{fault_kind}",
        protocol=protocol,
        n=4,
        duration=8.0,
        seeds=(11,),
        faults=FaultMix(
            **{fault_kind: count, "recover_at": 2.5, "downtime": 1.0}
        ),
    )
    params.update(overrides)
    return ScenarioSpec(**params)


@functools.lru_cache(maxsize=None)
def _replay(protocol, fault_kind):
    spec = recovery_spec(protocol, fault_kind)
    return spec, evaluate_case(spec, spec.seeds[0])


class TestRestartAndRejoin:
    """Every protocol survives a single crash-recovery replica."""

    @pytest.mark.parametrize("protocol", PROTOCOLS)
    def test_reborn_replica_catches_up(self, protocol):
        spec = recovery_spec(protocol, "recover", count=1)
        cluster = spec.build(spec.seeds[0])
        cluster.run()
        assert cluster.restarts == 1
        assert cluster.amnesia_restarts == 0
        # The victim (highest id under the assignment order) restarted,
        # reloaded its WAL, and rejoined: it commits again after the
        # downtime instead of staying frozen at the crash point.
        victim = cluster.replicas[spec.n - 1]
        assert not victim.crashed
        state = cluster.durable.state_for(victim.replica_id)
        assert state.restores == 1
        assert state.records > 0
        reference = cluster.replicas[0]
        reference_commits = len(reference.commit_tracker.commit_order)
        victim_commits = len(victim.commit_tracker.commit_order)
        assert reference_commits > 0
        assert victim_commits > reference_commits * 0.5, (
            f"victim stuck at {victim_commits}/{reference_commits}"
        )

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_recovery_metrics_present_only_when_scheduled(self, protocol):
        spec, entry = _replay(protocol, "recover")
        recoveries = entry["metrics"]["recoveries"]
        assert recoveries["restarts"] == 3
        assert recoveries["amnesia_restarts"] == 0
        assert recoveries["restores"] == 3
        assert recoveries["records"] > 0
        # Default-off runs carry no recoveries section at all: the
        # committed baseline metric schema is untouched.
        plain = recovery_spec(
            protocol,
            "recover",
            count=0,
            faults=FaultMix(),
            name=f"plain-{protocol}",
        )
        plain_entry = evaluate_case(plain, plain.seeds[0])
        assert "recoveries" not in plain_entry["metrics"]

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_wal_refuses_revotes_after_restart(self, protocol):
        spec = recovery_spec(protocol, "recover")
        cluster = spec.build(spec.seeds[0])
        cluster.run()
        for replica_id in range(spec.n):
            state = cluster.durable.peek(replica_id)
            if state is None:
                continue
            assert state.double_votes() == [], (
                f"replica {replica_id} double-voted despite its WAL"
            )


class TestAmnesiaDifferential:
    """The identical schedule, with and without the durable record."""

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_wal_restore_commits_safely(self, protocol):
        _spec, entry = _replay(protocol, "recover")
        invariants = entry["metrics"]["invariants"]
        assert invariants["ok"], invariants["violations"]
        assert entry["metrics"]["commits"] > 0
        assert "flight_recording" not in entry

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_amnesia_breaks_agreement(self, protocol):
        spec, entry = _replay(protocol, "amnesia")
        invariants = entry["metrics"]["invariants"]
        assert not invariants["ok"]
        kinds = {violation["invariant"] for violation in invariants["violations"]}
        # The reborn blank-disk quorum re-votes rounds its pre-crash
        # incarnation already voted in (double-vote) and certifies a
        # second history the honest observer also commits
        # (prefix-consistency).
        assert "double-vote" in kinds, kinds
        assert "prefix-consistency" in kinds, kinds
        recoveries = entry["metrics"]["recoveries"]
        assert recoveries["amnesia_restarts"] == 3
        assert recoveries["restores"] == 0  # nothing reloaded: disk lost

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_violating_run_ships_flight_recording(self, protocol):
        spec, entry = _replay(protocol, "amnesia")
        recording = entry["flight_recording"]
        assert set(recording["replicas"]) == {str(i) for i in range(spec.n)}
        assert recording["violations"] == (
            entry["metrics"]["invariants"]["violations"]
        )
        for state in recording["replicas"].values():
            assert state["events"]
        # Baselines and fuzz digests compare only entry["metrics"];
        # the dump must never leak into it.
        assert "flight_recording" not in entry["metrics"]

    @pytest.mark.parametrize("protocol", ("diembft", "sft-diembft"))
    def test_oracle_names_the_double_voter(self, protocol):
        _spec, entry = _replay(protocol, "amnesia")
        details = [
            violation["detail"]
            for violation in entry["metrics"]["invariants"]["violations"]
            if violation["invariant"] == "double-vote"
        ]
        assert details
        assert any("durable voting record" in detail for detail in details)

"""Real transaction flow: clients → mempools → blocks → commits."""

from repro.runtime.client import ClientWorkload
from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety
from tests.conftest import small_experiment


class TestClientWorkload:
    def _run(self, rate=500.0, duration=6.0):
        cluster = build_cluster(small_experiment(duration=duration)).build()
        workload = ClientWorkload(cluster, rate=rate)
        workload.start()
        cluster.run(duration)
        return cluster, workload

    def test_transactions_get_committed(self):
        cluster, workload = self._run()
        latencies = workload.end_to_end_latencies()
        assert len(latencies) > 100
        check_commit_safety(cluster.replicas)

    def test_end_to_end_latency_reasonable(self):
        _, workload = self._run()
        latencies = workload.end_to_end_latencies()
        mean = sum(latencies) / len(latencies)
        # Submission → batching → 3-chain commit at 10 ms links.
        assert 0.02 < mean < 2.0

    def test_blocks_carry_real_transactions(self):
        cluster, _ = self._run()
        replica = cluster.replicas[0]
        carried = 0
        for event in replica.commit_tracker.commit_order:
            block = replica.store.maybe_get(event.block_id)
            if block is not None:
                carried += len(block.payload.transactions)
        assert carried > 100

    def test_zero_rate_means_empty_blocks(self):
        cluster = build_cluster(small_experiment(duration=3.0)).build()
        workload = ClientWorkload(cluster, rate=0.0)
        workload.start()
        cluster.run(3.0)
        assert workload.end_to_end_latencies() == []
        # Chain still progresses with empty payloads (liveness).
        assert len(cluster.replicas[0].commit_tracker.commit_order) > 20

"""Partial synchrony: GST, partitions, recovery."""

from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety
from tests.conftest import small_experiment


class TestGST:
    def test_progress_resumes_after_gst(self):
        # Messages sent before GST = 3 s crawl; afterwards normal.
        config = small_experiment(
            duration=12.0, gst=3.0, pre_gst_delay=0.4, round_timeout=0.3
        )
        cluster = build_cluster(config).run()
        check_commit_safety(cluster.replicas)
        replica = cluster.replicas[0]
        post_gst_commits = [
            event
            for event in replica.commit_tracker.commit_order
            if event.committed_at > 4.0
        ]
        assert len(post_gst_commits) > 50

    def test_no_conflicting_commits_across_gst(self):
        config = small_experiment(
            duration=10.0, gst=2.0, pre_gst_delay=0.5, round_timeout=0.25
        )
        cluster = build_cluster(config).run()
        check_commit_safety(cluster.replicas)


class TestPartitions:
    def test_minority_partition_stalls_then_recovers(self):
        config = small_experiment(duration=14.0, round_timeout=0.3)
        cluster = build_cluster(config).build()
        # 2 replicas cut off from the 5-replica majority for 4 seconds.
        cluster.network.add_partition(
            [(0, 1, 2, 3, 4), (5, 6)], start=2.0, end=6.0
        )
        cluster.run()
        check_commit_safety(cluster.replicas)
        majority_commits = len(cluster.replicas[0].commit_tracker.commit_order)
        minority_commits = len(cluster.replicas[5].commit_tracker.commit_order)
        assert majority_commits > 50
        # The minority catches up after healing (held messages flush).
        assert minority_commits > 40

    def test_split_quorum_partition_halts_commits(self):
        config = small_experiment(duration=10.0, round_timeout=0.3)
        cluster = build_cluster(config).build()
        # 4/3 split: neither side has 2f+1 = 5 replicas.
        cluster.network.add_partition(
            [(0, 1, 2, 3), (4, 5, 6)], start=2.0, end=8.0
        )
        cluster.run()
        check_commit_safety(cluster.replicas)
        replica = cluster.replicas[0]
        during = [
            event
            for event in replica.commit_tracker.commit_order
            if 2.5 < event.committed_at < 7.5
        ]
        # No quorum, no commits inside the window (allow boundary noise).
        assert len(during) <= 2

    def test_commits_resume_after_heal(self):
        config = small_experiment(duration=14.0, round_timeout=0.3)
        cluster = build_cluster(config).build()
        cluster.network.add_partition(
            [(0, 1, 2, 3), (4, 5, 6)], start=2.0, end=6.0
        )
        cluster.run()
        replica = cluster.replicas[0]
        after = [
            event
            for event in replica.commit_tracker.commit_order
            if event.committed_at > 7.0
        ]
        assert len(after) > 20
        check_commit_safety(cluster.replicas)

"""Crash and Byzantine fault injection: Theorems 1 and 2 in action."""

from repro.adversary import (
    make_equivocating_leader,
    make_lazy_voter,
    make_silent,
    make_withholding_leader,
)
from repro.core.resilience import max_strength
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety
from tests.conftest import small_experiment


def alive(cluster):
    return [replica for replica in cluster.replicas if not replica.crashed]


class TestCrashFaults:
    def test_liveness_with_f_crashes(self):
        # n = 7, f = 2: two crashed replicas must not stop progress.
        config = small_experiment(
            duration=14.0, crash_schedule=((5, 0.0), (6, 0.0))
        )
        cluster = build_cluster(config).run()
        survivors = alive(cluster)
        assert all(
            len(replica.commit_tracker.commit_order) > 10
            for replica in survivors
        )
        check_commit_safety(survivors)

    def test_strength_capped_at_2f_minus_c(self):
        # Theorem 2: with c benign faults the cap is (2f - c)-strong.
        config = small_experiment(
            duration=14.0, crash_schedule=((6, 0.0),)
        )
        cluster = build_cluster(config).run()
        f = cluster.config.resolved_f()
        best = -1
        for replica in alive(cluster):
            for _, timeline in replica.commit_tracker.timelines():
                best = max(best, timeline.current)
        assert best == 2 * f - 1  # c = 1

    def test_crash_mid_run_prefix_stays_strong(self):
        config = small_experiment(duration=14.0, crash_schedule=((6, 4.0),))
        cluster = build_cluster(config).run()
        f = cluster.config.resolved_f()
        replica = cluster.replicas[0]
        # Blocks committed before the crash reached full 2f strength.
        early = [
            timeline
            for _, timeline in replica.commit_tracker.timelines()
            if timeline.block.created_at < 2.0
            and not timeline.block.is_genesis()
        ]
        assert early
        assert max(timeline.current for timeline in early) == max_strength(f)

    def test_crashed_leader_rounds_time_out(self):
        config = small_experiment(duration=14.0, crash_schedule=((3, 0.0),))
        cluster = build_cluster(config).run()
        survivors = alive(cluster)
        assert any(replica.timeouts_sent > 0 for replica in survivors)
        check_commit_safety(survivors)
        assert all(
            len(replica.commit_tracker.commit_order) > 10
            for replica in survivors
        )


class TestByzantineBehaviours:
    def test_silent_replicas_slow_strong_commits_only(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        overrides = {6: make_silent(SFTDiemBFTReplica)}
        cluster.build(replica_overrides=overrides).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i != 6]
        check_commit_safety(honest)
        f = cluster.config.resolved_f()
        best = -1
        for replica in honest:
            for _, timeline in replica.commit_tracker.timelines():
                best = max(best, timeline.current)
        # One silent replica: cap is 2f - 1, regular commits unaffected.
        assert best == 2 * f - 1
        assert len(honest[0].commit_tracker.commit_order) > 30

    def test_equivocating_leader_cannot_break_safety(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        overrides = {2: make_equivocating_leader(SFTDiemBFTReplica)}
        cluster.build(replica_overrides=overrides).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i != 2]
        check_commit_safety(honest)
        assert len(honest[0].commit_tracker.commit_order) > 20

    def test_equivocation_raises_markers(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        overrides = {2: make_equivocating_leader(SFTDiemBFTReplica)}
        cluster.build(replica_overrides=overrides).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i != 2]
        # Some honest replica voted across the fork and carries a marker.
        forked = [
            replica
            for replica in honest
            if len(replica.voting_history.voted_tips()) > 1
            or replica.voting_history.marker_for(
                replica.store.highest_certified_block()
            )
            > 0
        ]
        assert forked

    def test_withholding_leader_triggers_timeouts_but_progress(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        overrides = {4: make_withholding_leader(SFTDiemBFTReplica, reach=0.3)}
        cluster.build(replica_overrides=overrides).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i != 4]
        check_commit_safety(honest)
        assert len(honest[0].commit_tracker.commit_order) > 10

    def test_lazy_voter_excluded_from_qcs(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        overrides = {6: make_lazy_voter(SFTDiemBFTReplica, delay=1.0)}
        cluster.build(replica_overrides=overrides).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i != 6]
        check_commit_safety(honest)
        # The straggler's votes arrive after QCs form, so high-strength
        # commits stall below 2f.
        f = cluster.config.resolved_f()
        replica = honest[0]
        settled = replica.commit_tracker.commit_order[5:30]
        tops = [
            replica.commit_tracker.timeline_of(event.block_id).current
            for event in settled
        ]
        assert max(tops) <= 2 * f - 1

    def test_two_silent_replicas_cap_at_2f_minus_2(self):
        config = small_experiment(duration=14.0)
        cluster = build_cluster(config)
        silent = make_silent(SFTDiemBFTReplica)
        cluster.build(replica_overrides={5: silent, 6: silent}).run()
        honest = [r for i, r in enumerate(cluster.replicas) if i not in (5, 6)]
        f = cluster.config.resolved_f()
        best = -1
        for replica in honest:
            for _, timeline in replica.commit_tracker.timelines():
                best = max(best, timeline.current)
        assert best == 2 * f - 2

"""Liveness bounds: Theorems 2 and 3 (optimistic strong commits)."""

from repro.adversary import make_silent
from repro.protocols.sft_diembft import SFTDiemBFTReplica
from repro.runtime.config import build_cluster
from tests.conftest import small_experiment


def round_duration_estimate(cluster) -> float:
    replica = cluster.replicas[0]
    return cluster.simulator.now / max(1, replica.current_round)


def settled_timelines(cluster, margin: float):
    replica = cluster.replicas[0]
    horizon = cluster.simulator.now - margin
    for _, timeline in replica.commit_tracker.timelines():
        block = timeline.block
        if block.is_genesis() or block.created_at > horizon:
            continue
        yield timeline


class TestTheorem2CrashFaults:
    def test_2f_minus_c_within_n_plus_2_rounds(self):
        # c = 1 crash; blocks must be (2f-1)-strong within ~n+2 rounds.
        # In wall time, a rotation includes two timeout-priced rounds
        # (the crashed replica as leader and as vote collector), so the
        # bound adds that gap cost on top of n+2 fast rounds; the
        # theorem's round-robin argument also assumes each replica's
        # leadership slot embeds its vote, which the adjacent-crash slot
        # cannot, hence a small randomized-inclusion slack.
        config = small_experiment(duration=16.0, crash_schedule=((6, 0.0),))
        cluster = build_cluster(config).run()
        f = cluster.config.resolved_f()
        n = cluster.config.n
        target = 2 * f - 1
        per_round = round_duration_estimate(cluster)
        gap_cost = 2 * 2.5 * cluster.config.round_timeout
        bound = (n + 4) * per_round + gap_cost
        latencies = []
        for timeline in settled_timelines(cluster, margin=bound):
            latency = timeline.latency_to(target)
            assert latency is not None, (
                f"block at round {timeline.block.round} never reached "
                f"{target}-strong"
            )
            assert latency <= bound
            latencies.append(latency)
        assert len(latencies) > 20
        latencies.sort()
        median = latencies[len(latencies) // 2]
        assert median < (n + 4) * per_round

    def test_no_faults_2f_strong_within_n_plus_2_rounds(self):
        config = small_experiment(duration=12.0)
        cluster = build_cluster(config).run()
        f = cluster.config.resolved_f()
        n = cluster.config.n
        per_round = round_duration_estimate(cluster)
        bound = (n + 4) * per_round
        checked = 0
        for timeline in settled_timelines(cluster, margin=bound):
            latency = timeline.latency_to(2 * f)
            assert latency is not None
            assert latency <= bound
            checked += 1
        assert checked > 20


class TestTheorem3ByzantineFaults:
    def test_interval_votes_recover_2f_minus_t(self):
        # t = 1 silent Byzantine replica with generalized interval votes:
        # blocks still reach (2f - t)-strong (Theorem 3).
        config = small_experiment(duration=16.0, generalized_intervals=True)
        cluster = build_cluster(config)
        cluster.build(replica_overrides={6: make_silent(SFTDiemBFTReplica)})
        cluster.run()
        f = cluster.config.resolved_f()
        target = 2 * f - 1
        per_round = round_duration_estimate(cluster)
        bound = (cluster.config.n + 6) * per_round
        checked = 0
        for timeline in settled_timelines(cluster, margin=bound):
            latency = timeline.latency_to(target)
            assert latency is not None
            checked += 1
        assert checked > 20

    def test_marker_votes_also_suffice_without_forks(self):
        # With a merely-silent adversary no forks arise, so plain
        # markers already deliver the Theorem 2 guarantee.
        config = small_experiment(duration=16.0)
        cluster = build_cluster(config)
        cluster.build(replica_overrides={6: make_silent(SFTDiemBFTReplica)})
        cluster.run()
        f = cluster.config.resolved_f()
        reached = set()
        for timeline in settled_timelines(cluster, margin=4.0):
            reached.add(timeline.current)
        assert 2 * f - 1 in reached

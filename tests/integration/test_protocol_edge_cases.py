"""Protocol edge paths: stale messages, orphans, TC proposals, extremes."""

from repro.runtime.config import build_cluster
from repro.runtime.metrics import check_commit_safety
from tests.conftest import small_experiment


class TestMinimalCluster:
    def test_n4_f1_works(self):
        cluster = build_cluster(
            small_experiment(n=4, duration=6.0)
        ).run()
        check_commit_safety(cluster.replicas)
        replica = cluster.replicas[0]
        assert len(replica.commit_tracker.commit_order) > 30
        best = max(
            timeline.current
            for _, timeline in replica.commit_tracker.timelines()
        )
        assert best == 2  # 2f with f = 1

    def test_n4_one_crash_stalls_commits_with_round_robin(self):
        """A real chained-HotStuff liveness subtlety, documented.

        With votes sent to the *next* leader, a crashed replica kills
        both its own led rounds and the rounds whose votes it should
        have collected.  At n = 4 that is 2 of every 4 rounds, so no
        three *consecutive* certified rounds ever exist and the 3-chain
        rule never fires again — rounds keep advancing, QCs keep
        forming, commits stall.  (Theorem 2's honest-leader-window
        assumption implicitly requires n large enough relative to the
        crash pattern.)

        Sync off: the block-sync subsystem's timeout-vote recovery
        closes exactly this gap (tests/integration/test_block_sync.py);
        this test documents the bare protocol's behaviour.
        """
        cluster = build_cluster(
            small_experiment(n=4, duration=10.0, crash_schedule=((3, 1.0),),
                             sync_enabled=False)
        ).run()
        survivors = [r for r in cluster.replicas if not r.crashed]
        check_commit_safety(survivors)
        replica = survivors[0]
        assert replica.current_round > 40  # rounds still advance
        assert replica.qc_high.round > 40  # QCs still form
        late = [
            event
            for event in replica.commit_tracker.commit_order
            if event.committed_at > 3.0
        ]
        assert late == []  # …but nothing commits

    def test_n4_one_crash_recovers_with_leader_exclusion(self):
        """Production systems rotate leaders among healthy replicas
        (Diem's leader reputation); excluding the dead replica from
        the rotation restores the consecutive-round window."""
        config = small_experiment(n=4, duration=10.0,
                                  crash_schedule=((3, 1.0),))
        cluster = build_cluster(config)
        cluster.build()
        # Reconfigure every live replica's leader function to skip 3.
        for replica in cluster.replicas:
            replica.config.leader_fn = lambda round_number, n: (
                round_number % 3
            )
        cluster.run()
        survivors = [r for r in cluster.replicas if not r.crashed]
        check_commit_safety(survivors)
        late = [
            event
            for event in survivors[0].commit_tracker.commit_order
            if event.committed_at > 3.0
        ]
        assert len(late) > 20


class TestStaleMessageHandling:
    def test_stale_proposal_dropped(self):
        cluster = build_cluster(small_experiment(duration=2.0)).run()
        replica = cluster.replicas[0]
        # Re-deliver an old proposal: the replica has moved far past it.
        from repro.types.messages import ProposalMsg

        old_block = None
        for block in replica.store.all_blocks():
            if block.round == 1:
                old_block = block
                break
        assert old_block is not None
        round_before = replica.current_round
        votes_before = replica.votes_sent
        # Rebuild the original proposal message shape.
        proposal = ProposalMsg(
            sender=old_block.proposer, round=old_block.round, block=old_block
        )
        signature = cluster.registry.signing_key(old_block.proposer).sign(
            proposal.signing_payload()
        )
        proposal = ProposalMsg(
            sender=proposal.sender,
            round=proposal.round,
            block=proposal.block,
            signature=signature,
        )
        replica.deliver(old_block.proposer, proposal)
        assert replica.current_round == round_before
        assert replica.votes_sent == votes_before

    def test_stale_messages_kept_when_configured(self):
        cluster = build_cluster(
            small_experiment(duration=4.0, drop_stale_messages=False)
        ).run()
        check_commit_safety(cluster.replicas)
        assert len(cluster.replicas[0].commit_tracker.commit_order) > 20


class TestReorderingAndOrphans:
    def test_high_jitter_reordering_still_safe(self):
        # Jitter larger than the link delay reorders deliveries freely.
        cluster = build_cluster(
            small_experiment(
                duration=8.0, uniform_delay=0.005, jitter=0.02,
                round_timeout=0.8,
            )
        ).run()
        check_commit_safety(cluster.replicas)
        for replica in cluster.replicas:
            assert len(replica.commit_tracker.commit_order) > 10

    def test_orphan_buffers_drain(self):
        cluster = build_cluster(
            small_experiment(duration=8.0, uniform_delay=0.005, jitter=0.02,
                             round_timeout=0.8)
        ).run()
        for replica in cluster.replicas:
            # Nothing left waiting on a missing parent at quiescence.
            assert replica.store.orphan_count() <= 1


class TestTimeoutCertificatePath:
    def test_tc_proposals_accepted_after_leader_crash(self):
        cluster = build_cluster(
            small_experiment(duration=10.0, crash_schedule=((1, 0.0),))
        ).run()
        survivors = [r for r in cluster.replicas if not r.crashed]
        check_commit_safety(survivors)
        replica = survivors[0]
        # Rounds led by the crashed replica (1, 8, 15, …) are skipped;
        # the chain must contain round gaps bridged by TC proposals.
        committed_rounds = sorted(
            event.round
            for event in replica.commit_tracker.commit_order
            if event.round > 0
        )
        gaps = [
            later - earlier
            for earlier, later in zip(committed_rounds, committed_rounds[1:])
        ]
        assert any(gap > 1 for gap in gaps)
        assert len(committed_rounds) > 20

    def test_backoff_recovers_after_long_partition(self):
        cluster = build_cluster(
            small_experiment(duration=16.0, round_timeout=0.25)
        ).build()
        cluster.network.add_partition(
            [(0, 1, 2, 3), (4, 5, 6)], start=1.0, end=7.0
        )
        cluster.run()
        check_commit_safety(cluster.replicas)
        replica = cluster.replicas[0]
        post = [
            event
            for event in replica.commit_tracker.commit_order
            if event.committed_at > 9.0
        ]
        assert len(post) > 10


class TestVerificationToggle:
    def test_unverified_runs_match_verified_runs(self):
        verified = build_cluster(
            small_experiment(duration=4.0, verify_signatures=True)
        ).run()
        unverified = build_cluster(
            small_experiment(duration=4.0, verify_signatures=False)
        ).run()
        commits_a = [
            event.block_id
            for event in verified.replicas[0].commit_tracker.commit_order
        ]
        commits_b = [
            event.block_id
            for event in unverified.replicas[0].commit_tracker.commit_order
        ]
        assert commits_a == commits_b


class TestExtremeWorkloads:
    def test_tiny_blocks(self):
        cluster = build_cluster(
            small_experiment(
                duration=4.0, block_batch_count=1, block_batch_bytes=100
            )
        ).run()
        check_commit_safety(cluster.replicas)

    def test_huge_blocks_with_bandwidth(self):
        cluster = build_cluster(
            small_experiment(
                duration=6.0,
                block_batch_count=10_000,
                block_batch_bytes=4_500_000,
                bandwidth_bytes_per_sec=125_000_000,
                round_timeout=2.0,
            )
        ).run()
        check_commit_safety(cluster.replicas)
        assert len(cluster.replicas[0].commit_tracker.commit_order) > 5

    def test_long_run_memory_sanity(self):
        cluster = build_cluster(small_experiment(duration=30.0)).run()
        replica = cluster.replicas[0]
        # Collected vote buffers are pruned after QC formation.
        assert len(replica._collected_votes) < 10
        check_commit_safety(cluster.replicas)
